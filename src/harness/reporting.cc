#include "harness/reporting.hh"

#include <cmath>
#include <cstddef>
#include <cstdio>
#include <mutex>

#include "base/logging.hh"

namespace svf::harness
{

double
geomeanPct(const std::vector<double> &pcts)
{
    if (pcts.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double p : pcts) {
        double ratio = 1.0 + p / 100.0;
        if (!(ratio > 0.0) || !std::isfinite(ratio)) {
            warn("geomeanPct: degenerate speedup %.1f%%; clamping "
                 "to -99.9%%", p);
            ratio = 0.001;
        }
        log_sum += std::log(ratio);
    }
    return (std::exp(log_sum / static_cast<double>(pcts.size())) -
            1.0) * 100.0;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

std::string
pct(double v, int prec)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", prec, v);
    return buf;
}

std::string
rate(double per_sec, int prec)
{
    const char *suffix = "";
    double v = per_sec;
    if (v >= 1e9) {
        v /= 1e9;
        suffix = "G";
    } else if (v >= 1e6) {
        v /= 1e6;
        suffix = "M";
    } else if (v >= 1e3) {
        v /= 1e3;
        suffix = "k";
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f%s/s", prec, v, suffix);
    return buf;
}

void
banner(const std::string &title, const std::string &paper_ref)
{
    std::printf("======================================================"
                "==========\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s (Lee et al., HPCA 2001)\n",
                paper_ref.c_str());
    std::printf("======================================================"
                "==========\n");
}

namespace
{

// Shared across every emitter: concurrent reporters (pool workers of
// several runners, nested interval workers) must not tear lines into
// each other, and a durable line must never land mid-status.
std::mutex &
sinkLock()
{
    static std::mutex m;
    return m;
}

// Length of the status currently painted on the terminal (0 = none).
// Guarded by sinkLock().
std::size_t gStatusLen = 0;

/** Blank the painted status. Caller holds sinkLock(). */
void
clearStatusLocked()
{
    if (!gStatusLen)
        return;
    std::fprintf(stderr, "\r%*s\r", static_cast<int>(gStatusLen), "");
    gStatusLen = 0;
}

} // anonymous namespace

void
logLine(const std::string &line)
{
    std::lock_guard<std::mutex> g(sinkLock());
    clearStatusLocked();
    std::fprintf(stderr, "%s\n", line.c_str());
}

void
logStatus(const std::string &status)
{
    std::lock_guard<std::mutex> g(sinkLock());
    // Overpaint in place; pad with spaces when the previous status
    // was longer so no stale tail survives the \r.
    std::fprintf(stderr, "\r%s", status.c_str());
    if (status.size() < gStatusLen) {
        std::fprintf(stderr, "%*s",
                     static_cast<int>(gStatusLen - status.size()), "");
    }
    std::fflush(stderr);
    gStatusLen = status.size();
}

ProgressHook
stderrProgress()
{
    return [](const JobProgress &p) {
        char buf[512];
        std::snprintf(buf, sizeof(buf), "[%zu/%zu] %s (%.2fs%s)",
                      p.done, p.total, p.name.c_str(), p.wallSeconds,
                      p.cached ? ", cached" : "");
        logLine(buf);
    };
}

ProgressHook
statusProgress()
{
    return [](const JobProgress &p) {
        char buf[512];
        std::snprintf(buf, sizeof(buf), "[%zu/%zu] %s", p.done,
                      p.total, p.name.c_str());
        if (p.done == p.total)
            logLine(buf);       // finish with a durable line
        else
            logStatus(buf);
    };
}

} // namespace svf::harness
