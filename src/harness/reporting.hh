/**
 * @file
 * Shared reporting helpers for the bench binaries.
 */

#ifndef SVF_HARNESS_REPORTING_HH
#define SVF_HARNESS_REPORTING_HH

#include <string>
#include <vector>

namespace svf::harness
{

/** Geometric mean of (1 + pct/100) values, returned as a percent. */
double geomeanPct(const std::vector<double> &pcts);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

/** "12.3%" style rendering. */
std::string pct(double v, int prec = 1);

/** Standard bench banner with the paper reference. */
void banner(const std::string &title, const std::string &paper_ref);

} // namespace svf::harness

#endif // SVF_HARNESS_REPORTING_HH
