/**
 * @file
 * Shared reporting helpers for the bench binaries.
 */

#ifndef SVF_HARNESS_REPORTING_HH
#define SVF_HARNESS_REPORTING_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace svf::harness
{

/**
 * Geometric mean of (1 + pct/100) values, returned as a percent.
 * Values at or below -100% have no log (a zero/negative ratio);
 * they warn and clamp rather than producing nan.
 */
double geomeanPct(const std::vector<double> &pcts);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

/** "12.3%" style rendering. */
std::string pct(double v, int prec = 1);

/**
 * Human rendering of a per-second rate: "1.23G/s", "456k/s",
 * "12.3/s". Used by the host-throughput bench for simulated
 * cycles/sec and MIPS next to the raw JSON numbers.
 */
std::string rate(double per_sec, int prec = 2);

/** Standard bench banner with the paper reference. */
void banner(const std::string &title, const std::string &paper_ref);

/**
 * @name Serialized stderr sink
 *
 * Every progress emitter — the Runner's per-job hook and any
 * transient worker status from the sampled pipeline — writes through
 * these two calls. They share one mutex and a \r-safe line
 * discipline: a status is painted with \r and no trailing newline
 * (the next status overwrites it in place), and a durable line first
 * blanks whatever status is still on screen. Concurrent reporters
 * therefore never tear half-lines into each other, and a finished
 * line is never left glued to a stale status fragment.
 */
/// @{

/** Print a durable line (newline-terminated) to stderr. */
void logLine(const std::string &line);

/** Paint a transient status line; the next logStatus/logLine
 *  overwrites it. */
void logStatus(const std::string &status);

/// @}

/**
 * @name Runner progress reporting
 *
 * The experiment runner (harness/runner.hh) reports each finished
 * job through a hook of this shape. Hooks are invoked under the
 * runner's lock, one job at a time, in completion (not submission)
 * order.
 */
/// @{

/** One finished job, as seen by a progress hook. */
struct JobProgress
{
    std::size_t index = 0;      //!< submission index within the plan
    std::size_t done = 0;       //!< jobs finished so far (this one included)
    std::size_t total = 0;      //!< jobs in the plan
    std::string name;           //!< the job's display name
    double wallSeconds = 0.0;   //!< host wall time of this job
    bool cached = false;        //!< served from the memo cache
};

using ProgressHook = std::function<void(const JobProgress &)>;

/** A hook that prints "[done/total] name (wall)" lines to stderr. */
ProgressHook stderrProgress();

/**
 * A hook that paints the same "[done/total] name" as a transient
 * \r-overwritten status instead of one durable line per job —
 * progress=2 in the bench harness, for wide sweeps on one terminal.
 */
ProgressHook statusProgress();

/// @}

} // namespace svf::harness

#endif // SVF_HARNESS_REPORTING_HH
