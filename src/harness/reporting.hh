/**
 * @file
 * Shared reporting helpers for the bench binaries.
 */

#ifndef SVF_HARNESS_REPORTING_HH
#define SVF_HARNESS_REPORTING_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace svf::harness
{

/**
 * Geometric mean of (1 + pct/100) values, returned as a percent.
 * Values at or below -100% have no log (a zero/negative ratio);
 * they warn and clamp rather than producing nan.
 */
double geomeanPct(const std::vector<double> &pcts);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

/** "12.3%" style rendering. */
std::string pct(double v, int prec = 1);

/**
 * Human rendering of a per-second rate: "1.23G/s", "456k/s",
 * "12.3/s". Used by the host-throughput bench for simulated
 * cycles/sec and MIPS next to the raw JSON numbers.
 */
std::string rate(double per_sec, int prec = 2);

/** Standard bench banner with the paper reference. */
void banner(const std::string &title, const std::string &paper_ref);

/**
 * @name Runner progress reporting
 *
 * The experiment runner (harness/runner.hh) reports each finished
 * job through a hook of this shape. Hooks are invoked under the
 * runner's lock, one job at a time, in completion (not submission)
 * order.
 */
/// @{

/** One finished job, as seen by a progress hook. */
struct JobProgress
{
    std::size_t index = 0;      //!< submission index within the plan
    std::size_t done = 0;       //!< jobs finished so far (this one included)
    std::size_t total = 0;      //!< jobs in the plan
    std::string name;           //!< the job's display name
    double wallSeconds = 0.0;   //!< host wall time of this job
    bool cached = false;        //!< served from the memo cache
};

using ProgressHook = std::function<void(const JobProgress &)>;

/** A hook that prints "[done/total] name (wall)" lines to stderr. */
ProgressHook stderrProgress();

/// @}

} // namespace svf::harness

#endif // SVF_HARNESS_REPORTING_HH
