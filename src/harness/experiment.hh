/**
 * @file
 * Experiment harness: builds a workload + machine pair, runs the
 * timing model and returns the statistics every bench binary needs.
 */

#ifndef SVF_HARNESS_EXPERIMENT_HH
#define SVF_HARNESS_EXPERIMENT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "ckpt/sampler.hh"
#include "isa/program.hh"
#include "trace/trace.hh"
#include "uarch/machine_config.hh"
#include "uarch/ooo_core.hh"

namespace svf { class Config; }

namespace svf::harness
{

/** One simulation to run. */
struct RunSetup
{
    /**
     * Registry short name. With cores>1 or slice>0 this may be a
     * comma-separated list (one program per core, or the programs to
     * round-robin); a single name is replicated across cores.
     */
    std::string workload;
    std::string input;          //!< input variant (comma list too)
    std::uint64_t scale = 0;    //!< 0 = the registry default scale
    std::uint64_t maxInsts = 500'000;
    uarch::MachineConfig machine;

    /**
     * @name System drive mode (uarch/system.hh)
     * cores > 1 runs one program per core over a shared L2 in
     * deterministic epochs of sysQuantum cycles; slicePeriod > 0
     * round-robins the programs on one core, context-switching every
     * slicePeriod committed instructions. The defaults (1, 0)
     * reproduce the classic single-core run bit-identically — and
     * are then excluded from key(), so existing cached results stay
     * valid.
     */
    /// @{
    unsigned cores = 1;
    std::uint64_t slicePeriod = 0;
    Cycle sysQuantum = 1024;
    /// @}

    /**
     * Interval sampling schedule (ckpt/sampler.hh). Disabled by
     * default: the whole budget runs through the cycle model. When
     * enabled, maxInsts becomes the *functional* budget and only
     * the sampled windows are simulated in detail.
     */
    ckpt::SamplePlan sample;

    /**
     * Snapshot directory for the sampler's fast-forward cache
     * (ckpt/snapshot.hh). A host-side accelerator only — restoring
     * a snapshot is bit-identical to fast-forwarding — so it is
     * deliberately NOT part of key().
     */
    std::string ckptDir;

    /**
     * Worker threads for the detailed windows of a sampled run.
     * Intervals of a cold plan are independent by construction —
     * each one restores from a snapshot produced by one functional
     * pass — so any pjobs value produces byte-identical results (the
     * per-interval statistics are folded in interval order
     * regardless of which worker finished first). Warm plans
     * (sample=...,warm) ignore pjobs and walk serially: functional
     * warming folds over the whole instruction stream, so their
     * windows are not independent. Host-side parallelism only, so
     * like ckptDir it is deliberately NOT part of key().
     */
    unsigned pjobs = 1;

    /**
     * Event tracing sink (trace/trace.hh; trace=FILE[,cats][,start,
     * len]). Tracing is an observer: every simulated counter is
     * bit-identical with it on, off, or compiled out, so like
     * ckptDir and pjobs it is deliberately NOT part of key().
     * Supported for single-core runs (full, and sampled cold/pwarm/
     * warm plans — sampled traces carry one stream per interval);
     * refused for cores>1 / slice= runs, which would interleave N
     * streams into one file.
     */
    trace::TraceSpec trace;

    /**
     * When set, simulate this program instead of a registry
     * workload (svf-sim's asm= mode and custom-kernel benches).
     * No golden output is available, so the output check is skipped.
     */
    std::shared_ptr<const isa::Program> program;

    /**
     * Canonical setup key: a hash of every field (the program
     * content when explicit, every MachineConfig parameter and the
     * sampling plan included). Two setups that could simulate
     * differently key apart; the runner memoizes results under this
     * key, in memory and — with cache=DIR — on disk.
     */
    std::uint64_t key() const;
};

/** Everything measured by one simulation. */
struct RunResult
{
    /**
     * Group name when this result is a perCore entry (the core's or
     * program's workload, suffixed #i when the mix repeats a name).
     * Empty on a top-level result.
     */
    std::string label;

    uarch::CoreStats core;

    /** @name SVF statistics */
    /// @{
    std::uint64_t svfQuadsIn = 0;
    std::uint64_t svfQuadsOut = 0;
    std::uint64_t svfFastLoads = 0;
    std::uint64_t svfFastStores = 0;
    std::uint64_t svfReroutedLoads = 0;
    std::uint64_t svfReroutedStores = 0;
    std::uint64_t svfWindowMisses = 0;
    std::uint64_t svfDemandFills = 0;
    std::uint64_t svfDisableEpisodes = 0;
    std::uint64_t svfRefsWhileDisabled = 0;
    /// @}

    /** @name Stack cache statistics */
    /// @{
    std::uint64_t scQuadsIn = 0;
    std::uint64_t scQuadsOut = 0;
    std::uint64_t scHits = 0;
    std::uint64_t scMisses = 0;
    /// @}

    /** @name Cache hierarchy statistics */
    /// @{
    std::uint64_t dl1Hits = 0;
    std::uint64_t dl1Misses = 0;
    std::uint64_t l2Hits = 0;
    std::uint64_t l2Misses = 0;
    /// @}

    /**
     * Whole-run estimates when the run was interval-sampled
     * (sampled.enabled()); for sampled runs, `core` holds only the
     * measured detailed windows' deltas (warmup and fast-forward
     * excluded), so ipc() is the sampled IPC estimate.
     */
    ckpt::SampleEstimate sampled;

    /** Everything the program printed (svf-sim's report). */
    std::string output;

    /**
     * Output check: true when the program ran to completion within
     * the budget and printed exactly the golden model's output, or
     * ran out of budget before halting (in which case there is
     * nothing to compare).
     */
    bool outputOk = true;

    /** Did the program halt within the instruction budget? */
    bool completed = false;

    /**
     * Per-core (cores=N) or per-program (slice=Q) counter groups, in
     * slot/program order. The top-level counters aggregate them:
     * cycles is the across-cores maximum (the system ran that long),
     * every other counter is the sum, and completed/outputOk are the
     * conjunctions. Empty for classic single-program runs and for
     * sampled multi-core runs (which estimate the aggregate only).
     */
    std::vector<RunResult> perCore;

    double ipc() const { return core.ipc(); }
};

/** Run one experiment (full or sampled, per setup.sample). */
RunResult runExperiment(const RunSetup &setup);

/**
 * Build a MachineConfig from the standard key=value options
 * (width=, dl1_ports=, bpred=, svf=, svf.kb=, svf.ports=,
 * svf.no_squash=, svf.morph=, svf.dynamic=, stack_cache=,
 * stack_cache.kb=, no_addr_cal_op=, ctx_period=, sched=). Shared by
 * svf-sim and svf-ckpt so the two CLIs accept identical machines.
 */
uarch::MachineConfig machineFromConfig(const Config &cfg);

/**
 * Read the System drive-mode options — cores=N, slice=Q (committed
 * instructions per time slice) and quantum=C (multi-core epoch
 * length in cycles) — into @p setup. Shared by svf-sim and the
 * bench harness so every CLI spells the modes identically.
 */
void systemFromConfig(const Config &cfg, RunSetup &setup);

/**
 * The paper's baseline machine: Table 2 shape at @p width with
 * @p dl1_ports universal first-level ports.
 */
uarch::MachineConfig baselineConfig(unsigned width,
                                    unsigned dl1_ports = 2,
                                    const std::string &bpred =
                                        "perfect");

/** Enable an SVF of @p entries words and @p ports ports. */
void applySvf(uarch::MachineConfig &cfg, std::uint32_t entries,
              unsigned ports);

/**
 * Figure 5's idealization: effectively infinite SVF (1M entries)
 * with unlimited ports, morphing every stack reference.
 */
void applyInfiniteSvf(uarch::MachineConfig &cfg);

/** Enable a decoupled stack cache of @p size bytes, @p ports ports. */
void applyStackCache(uarch::MachineConfig &cfg, std::uint64_t size,
                     unsigned ports);

/**
 * Percentage speedup of @p opt over @p base (same work).
 *
 * Degenerate inputs — a zero-cycle base or optimized run, as from a
 * mis-scoped budget — would divide to inf/nan and silently poison
 * table averages; they instead warn and clamp to 0.
 */
double speedupPct(const RunResult &base, const RunResult &opt);

/**
 * @name Host-throughput metrics
 *
 * Simulator speed, not simulated speed: how many simulated
 * instructions (MIPS) or cycles the host chewed through per wall
 * second. Non-positive wall time (a memoized job, or a clock
 * glitch) returns 0 — distinguishable from any real rate and safe
 * in ratios guarded by the caller.
 */
/// @{
double hostMips(const RunResult &r, double wall_seconds);
double hostCyclesPerSec(const RunResult &r, double wall_seconds);
/// @}

} // namespace svf::harness

#endif // SVF_HARNESS_EXPERIMENT_HH
