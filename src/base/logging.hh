/**
 * @file
 * Error and status reporting helpers in the gem5 idiom.
 *
 * panic() is for internal simulator bugs (conditions that should never
 * occur regardless of user input); fatal() is for user-caused
 * conditions (bad configuration, malformed assembly) that prevent the
 * simulation from continuing; warn()/inform() report status without
 * stopping the run.
 */

#ifndef SVF_BASE_LOGGING_HH
#define SVF_BASE_LOGGING_HH

#include <cstdarg>
#include <string>

namespace svf
{

/** Format a printf-style message into a std::string. */
std::string csprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Format a printf-style message from a va_list. */
std::string vcsprintf(const char *fmt, va_list args);

/**
 * Report an internal simulator bug and abort.
 *
 * @param fmt printf-style format string describing the bug.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report a user-caused unrecoverable condition and exit(1).
 *
 * @param fmt printf-style format string describing the problem.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a suspicious but survivable condition to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Report normal operating status to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Panic when a condition that must hold does not.
 *
 * Unlike assert() this is always compiled in; simulators are routinely
 * built optimized and invariant violations must still be caught.
 */
#define svf_assert(cond, ...)                                         \
    do {                                                              \
        if (!(cond)) {                                                \
            ::svf::panic("assertion '%s' failed at %s:%d",            \
                         #cond, __FILE__, __LINE__);                  \
        }                                                             \
    } while (0)

} // namespace svf

#endif // SVF_BASE_LOGGING_HH
