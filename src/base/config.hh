/**
 * @file
 * A flat key=value configuration store.
 *
 * Bench binaries and examples accept "key=value" command-line
 * overrides (e.g. "insts=2000000 svf.ports=2"); this class parses and
 * types them. Unknown keys are detected at the end of a run so typos
 * fail loudly rather than silently using defaults.
 */

#ifndef SVF_BASE_CONFIG_HH
#define SVF_BASE_CONFIG_HH

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace svf
{

/** Parsed key=value overrides with typed, defaulted accessors. */
class Config
{
  public:
    Config() = default;

    /**
     * Parse argv-style overrides.
     *
     * Each argument must look like key=value; anything else is a
     * fatal() user error.
     */
    static Config fromArgs(int argc, char **argv);

    /** Set one key, overwriting any previous value. */
    void set(const std::string &key, const std::string &value);

    /** Is @p key present? */
    bool has(const std::string &key) const;

    /** String value of @p key, or @p def when absent. */
    std::string getString(const std::string &key,
                          const std::string &def) const;

    /** Unsigned integer value of @p key, or @p def when absent. */
    std::uint64_t getUint(const std::string &key,
                          std::uint64_t def) const;

    /** Signed integer value of @p key, or @p def when absent. */
    std::int64_t getInt(const std::string &key, std::int64_t def) const;

    /** Boolean value (true/false/1/0) of @p key, or @p def. */
    bool getBool(const std::string &key, bool def) const;

    /** Double value of @p key, or @p def when absent. */
    double getDouble(const std::string &key, double def) const;

    /** Keys that were set but never read; use to catch typos. */
    std::vector<std::string> unusedKeys() const;

    /**
     * The key the program actually reads that is closest to
     * @p unused_key (edit distance at most 2), or "" when nothing is
     * close — "did you mean" for unused-key warnings.
     */
    std::string suggest(const std::string &unused_key) const;

    /**
     * Print the standard "warn: unused config key 'x' (did you mean
     * 'y'?)" lines on stderr for every unused key.
     */
    void warnUnused() const;

  private:
    std::map<std::string, std::string> values;
    mutable std::set<std::string> touched;
};

} // namespace svf

#endif // SVF_BASE_CONFIG_HH
