#include "base/config.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "base/logging.hh"
#include "base/str.hh"

namespace svf
{

Config
Config::fromArgs(int argc, char **argv)
{
    Config cfg;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto eq = arg.find('=');
        if (eq == std::string::npos || eq == 0) {
            fatal("bad argument '%s': expected key=value",
                  arg.c_str());
        }
        cfg.set(arg.substr(0, eq), arg.substr(eq + 1));
    }
    return cfg;
}

void
Config::set(const std::string &key, const std::string &value)
{
    values[key] = value;
}

bool
Config::has(const std::string &key) const
{
    touched.insert(key);
    return values.count(key) != 0;
}

std::string
Config::getString(const std::string &key, const std::string &def) const
{
    touched.insert(key);
    auto it = values.find(key);
    return it == values.end() ? def : it->second;
}

std::uint64_t
Config::getUint(const std::string &key, std::uint64_t def) const
{
    touched.insert(key);
    auto it = values.find(key);
    if (it == values.end())
        return def;
    std::uint64_t v = 0;
    if (!parseUint(it->second, v)) {
        fatal("config key '%s': '%s' is not an unsigned integer",
              key.c_str(), it->second.c_str());
    }
    return v;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t def) const
{
    touched.insert(key);
    auto it = values.find(key);
    if (it == values.end())
        return def;
    std::int64_t v = 0;
    if (!parseInt(it->second, v)) {
        fatal("config key '%s': '%s' is not an integer",
              key.c_str(), it->second.c_str());
    }
    return v;
}

bool
Config::getBool(const std::string &key, bool def) const
{
    touched.insert(key);
    auto it = values.find(key);
    if (it == values.end())
        return def;
    std::string v = toLower(it->second);
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    fatal("config key '%s': '%s' is not a boolean",
          key.c_str(), it->second.c_str());
}

double
Config::getDouble(const std::string &key, double def) const
{
    touched.insert(key);
    auto it = values.find(key);
    if (it == values.end())
        return def;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end != it->second.c_str() + it->second.size()) {
        fatal("config key '%s': '%s' is not a number",
              key.c_str(), it->second.c_str());
    }
    return v;
}

std::vector<std::string>
Config::unusedKeys() const
{
    std::vector<std::string> out;
    for (const auto &kv : values) {
        if (!touched.count(kv.first))
            out.push_back(kv.first);
    }
    return out;
}

namespace
{

/** Levenshtein distance, early-exited at @p limit + 1. */
std::size_t
editDistance(const std::string &a, const std::string &b,
             std::size_t limit)
{
    if (a.size() > b.size())
        return editDistance(b, a, limit);
    if (b.size() - a.size() > limit)
        return limit + 1;
    std::vector<std::size_t> row(a.size() + 1);
    for (std::size_t i = 0; i <= a.size(); ++i)
        row[i] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
        std::size_t prev = row[0];
        row[0] = j;
        std::size_t best = row[0];
        for (std::size_t i = 1; i <= a.size(); ++i) {
            std::size_t cur = row[i];
            std::size_t sub = prev + (a[i - 1] != b[j - 1]);
            row[i] = std::min({row[i] + 1, row[i - 1] + 1, sub});
            prev = cur;
            best = std::min(best, row[i]);
        }
        if (best > limit)
            return limit + 1;
    }
    return row[a.size()];
}

} // anonymous namespace

std::string
Config::suggest(const std::string &unused_key) const
{
    constexpr std::size_t Limit = 2;
    std::string best;
    std::size_t best_dist = Limit + 1;
    for (const auto &known : touched) {
        std::size_t d = editDistance(unused_key, known, Limit);
        if (d < best_dist) {
            best_dist = d;
            best = known;
        }
    }
    return best;
}

void
Config::warnUnused() const
{
    for (const auto &key : unusedKeys()) {
        std::string guess = suggest(key);
        if (guess.empty()) {
            std::fprintf(stderr, "warn: unused config key '%s'\n",
                         key.c_str());
        } else {
            std::fprintf(stderr,
                         "warn: unused config key '%s' (did you "
                         "mean '%s'?)\n",
                         key.c_str(), guess.c_str());
        }
    }
}

} // namespace svf
