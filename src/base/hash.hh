/**
 * @file
 * Deterministic 64-bit hashing for canonical setup keys.
 *
 * The experiment runner memoizes simulations by a hash of every
 * field of their setup (see harness/runner.hh). These helpers give
 * every config struct a cheap, order-sensitive, well-mixed way to
 * build such a key: start from hashInit() (optionally salted with a
 * type tag) and fold each field in with hashCombine().
 *
 * The mixing core is the splitmix64 finalizer, so single-bit and
 * single-field perturbations diffuse through the whole key; a
 * collision between two distinct setups is a ~2^-64 accident.
 */

#ifndef SVF_BASE_HASH_HH
#define SVF_BASE_HASH_HH

#include <bit>
#include <cstdint>
#include <string>

namespace svf
{

/** splitmix64 finalizer: diffuse all 64 bits of @p x. */
constexpr std::uint64_t
hashMix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Seed for a key; salt with a type tag to separate setup kinds. */
constexpr std::uint64_t
hashInit(std::uint64_t tag = 0)
{
    return hashMix(0x5356465f4b455931ull ^ tag);   // "SVF_KEY1"
}

/** Fold one integer field into @p seed (order-sensitive). */
constexpr std::uint64_t
hashCombine(std::uint64_t seed, std::uint64_t v)
{
    return hashMix(seed ^ (hashMix(v) + 0x9e3779b97f4a7c15ull +
                           (seed << 6) + (seed >> 2)));
}

/** Fold a double in by bit pattern (0.5 and 0.25 hash apart). */
inline std::uint64_t
hashCombine(std::uint64_t seed, double v)
{
    return hashCombine(seed, std::bit_cast<std::uint64_t>(v));
}

/** Fold a string in, length-prefixed so "ab","c" != "a","bc". */
inline std::uint64_t
hashCombine(std::uint64_t seed, const std::string &s)
{
    seed = hashCombine(seed, std::uint64_t(s.size()));
    // FNV-1a over the bytes, then mix the digest in.
    std::uint64_t h = 1469598103934665603ull;
    for (char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 1099511628211ull;
    }
    return hashCombine(seed, h);
}

} // namespace svf

#endif // SVF_BASE_HASH_HH
