#include "base/bitfield.hh"

#include "base/logging.hh"

namespace svf
{

unsigned
floorLog2(std::uint64_t v)
{
    svf_assert(v != 0);
    unsigned l = 0;
    while (v >>= 1)
        ++l;
    return l;
}

} // namespace svf
