/**
 * @file
 * Bit manipulation helpers used throughout the ISA and cache models.
 */

#ifndef SVF_BASE_BITFIELD_HH
#define SVF_BASE_BITFIELD_HH

#include <cstdint>

#include "base/types.hh"

namespace svf
{

/** Return a mask with the low @p nbits bits set. */
constexpr std::uint64_t
mask(unsigned nbits)
{
    return nbits >= 64 ? ~std::uint64_t(0)
                       : ((std::uint64_t(1) << nbits) - 1);
}

/** Extract bits [last:first] (inclusive) of @p val, right-justified. */
constexpr std::uint64_t
bits(std::uint64_t val, unsigned last, unsigned first)
{
    return (val >> first) & mask(last - first + 1);
}

/** Insert @p val into bits [last:first] of a zero word. */
constexpr std::uint64_t
insertBits(std::uint64_t val, unsigned last, unsigned first)
{
    return (val & mask(last - first + 1)) << first;
}

/** Sign-extend the low @p nbits bits of @p val to 64 bits. */
constexpr std::int64_t
sext(std::uint64_t val, unsigned nbits)
{
    std::uint64_t m = std::uint64_t(1) << (nbits - 1);
    std::uint64_t v = val & mask(nbits);
    return static_cast<std::int64_t>((v ^ m) - m);
}

/** Is @p v a power of two (zero is not)? */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Floor of log2 of @p v; panics on zero via caller contract. */
unsigned floorLog2(std::uint64_t v);

/** Round @p addr down to a multiple of power-of-two @p align. */
constexpr Addr
alignDown(Addr addr, std::uint64_t align)
{
    return addr & ~(align - 1);
}

/** Round @p addr up to a multiple of power-of-two @p align. */
constexpr Addr
alignUp(Addr addr, std::uint64_t align)
{
    return (addr + align - 1) & ~(align - 1);
}

} // namespace svf

#endif // SVF_BASE_BITFIELD_HH
