/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Workload inputs and property tests must be reproducible across runs
 * and platforms, so all randomness flows through this splitmix64 /
 * xoshiro256** generator rather than std::mt19937 (whose distributions
 * are not bit-identical across standard libraries).
 */

#ifndef SVF_BASE_RANDOM_HH
#define SVF_BASE_RANDOM_HH

#include <cstdint>

namespace svf
{

/**
 * A small, fast, deterministic PRNG (xoshiro256**) with splitmix64
 * seeding.
 */
class Rng
{
  public:
    /** Construct with a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform value in [0, bound); bound must be nonzero. */
    std::uint64_t below(std::uint64_t bound);

    /** Uniform value in [lo, hi] inclusive. */
    std::int64_t range(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double real();

    /** True with probability @p p (clamped to [0,1]). */
    bool chance(double p);

  private:
    std::uint64_t s[4];
};

} // namespace svf

#endif // SVF_BASE_RANDOM_HH
