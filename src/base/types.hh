/**
 * @file
 * Fundamental scalar type aliases shared across the simulator.
 */

#ifndef SVF_BASE_TYPES_HH
#define SVF_BASE_TYPES_HH

#include <cstdint>

namespace svf
{

/** A byte address in the simulated 64-bit virtual address space. */
using Addr = std::uint64_t;

/** A simulated clock cycle count. */
using Cycle = std::uint64_t;

/** A dynamic instruction sequence number (program order). */
using InstSeq = std::uint64_t;

/** A 64-bit architectural register value. */
using RegVal = std::uint64_t;

/** An architectural register index (0..31). */
using RegIndex = std::uint8_t;

} // namespace svf

#endif // SVF_BASE_TYPES_HH
