/**
 * @file
 * Small string helpers used by the assembler and config parsing.
 */

#ifndef SVF_BASE_STR_HH
#define SVF_BASE_STR_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace svf
{

/** Strip leading and trailing whitespace. */
std::string_view trim(std::string_view s);

/** Split @p s on @p sep, trimming each piece; empty pieces kept. */
std::vector<std::string> split(std::string_view s, char sep);

/** Split @p s on runs of whitespace; empty pieces dropped. */
std::vector<std::string> tokenize(std::string_view s);

/** Case-sensitive prefix test. */
bool startsWith(std::string_view s, std::string_view prefix);

/** Lower-case an ASCII string. */
std::string toLower(std::string_view s);

/**
 * Parse a signed integer with optional 0x prefix and sign.
 *
 * @param s text to parse (whole string must be consumed).
 * @param out receives the value on success.
 * @retval true on success, false on malformed input.
 */
bool parseInt(std::string_view s, std::int64_t &out);

/** Parse an unsigned 64-bit integer with optional 0x prefix. */
bool parseUint(std::string_view s, std::uint64_t &out);

} // namespace svf

#endif // SVF_BASE_STR_HH
