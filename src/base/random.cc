#include "base/random.hh"

#include "base/logging.hh"

namespace svf
{

namespace
{

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // anonymous namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &word : s)
        word = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    std::uint64_t result = rotl(s[1] * 5, 7) * 9;
    std::uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);
    return result;
}

std::uint64_t
Rng::below(std::uint64_t bound)
{
    svf_assert(bound != 0);
    // Rejection sampling keeps the distribution exactly uniform.
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
        std::uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

std::int64_t
Rng::range(std::int64_t lo, std::int64_t hi)
{
    svf_assert(lo <= hi);
    std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
    if (span == ~std::uint64_t(0))
        return static_cast<std::int64_t>(next());
    return lo + static_cast<std::int64_t>(below(span + 1));
}

double
Rng::real()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return real() < p;
}

} // namespace svf
