#include "base/str.hh"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace svf
{

std::string_view
trim(std::string_view s)
{
    size_t b = 0;
    size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string>
split(std::string_view s, char sep)
{
    std::vector<std::string> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == sep) {
            out.emplace_back(trim(s.substr(start, i - start)));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string>
tokenize(std::string_view s)
{
    std::vector<std::string> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i]))) {
            ++i;
        }
        if (i > start)
            out.emplace_back(s.substr(start, i - start));
    }
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (auto &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
parseInt(std::string_view s, std::int64_t &out)
{
    s = trim(s);
    if (s.empty())
        return false;
    std::string buf(s);
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(buf.c_str(), &end, 0);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return false;
    out = v;
    return true;
}

bool
parseUint(std::string_view s, std::uint64_t &out)
{
    s = trim(s);
    if (s.empty() || s[0] == '-')
        return false;
    std::string buf(s);
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(buf.c_str(), &end, 0);
    if (errno != 0 || end != buf.c_str() + buf.size())
        return false;
    out = v;
    return true;
}

} // namespace svf
