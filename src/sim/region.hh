/**
 * @file
 * Memory region classification (Figure 1's categories).
 */

#ifndef SVF_SIM_REGION_HH
#define SVF_SIM_REGION_HH

#include "base/types.hh"
#include "isa/isa.hh"

namespace svf::sim
{

/** The memory regions the paper partitions references into. */
enum class Region
{
    Text,
    Global,                     //!< static .data/.rdata
    Heap,
    Stack,
    Other,
};

/** Access method breakdown used by Figure 1. */
enum class AccessMethod
{
    Sp,                         //!< base register is $sp
    Fp,                         //!< base register is $fp
    Gpr,                        //!< any other base register
};

/** Classify a data address against the fixed layout. */
Region classify(Addr a);

/** Classify the addressing method from a base register. */
AccessMethod methodOf(RegIndex base);

/** Printable region name. */
const char *regionName(Region r);

/** Printable method name. */
const char *methodName(AccessMethod m);

} // namespace svf::sim

#endif // SVF_SIM_REGION_HH
