#include "sim/mem_image.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "base/bitfield.hh"
#include "base/logging.hh"
#include "isa/program.hh"

namespace svf::sim
{

void
MemImage::loadProgram(const isa::Program &prog)
{
    for (const auto &s : prog.sections)
        writeBytes(s.base, s.bytes.data(), s.bytes.size());
}

const MemImage::Page *
MemImage::findPage(Addr a) const
{
    Addr page_addr = alignDown(a, PageSize);
    if (page_addr == lastPageAddr)
        return lastPageRo;
    auto it = pages.find(page_addr);
    if (it != pages.end()) {
        lastPageAddr = page_addr;
        lastPageRo = it->second.get();
        lastPageRw = it->second.get();
        return lastPageRo;
    }
    if (base) {
        auto bit = base->find(page_addr);
        if (bit != base->end()) {
            lastPageAddr = page_addr;
            lastPageRo = bit->second.get();
            lastPageRw = nullptr;   // frozen: never hand out writable
            return lastPageRo;
        }
    }
    return nullptr;
}

MemImage::Page &
MemImage::overlaySlot(Addr page_addr, bool copy_base)
{
    auto &slot = pages[page_addr];
    if (!slot) {
        slot = std::make_unique<Page>();
        const Page *from = nullptr;
        if (copy_base && base) {
            auto bit = base->find(page_addr);
            if (bit != base->end())
                from = bit->second.get();
        }
        if (from)
            *slot = *from;
        else
            slot->fill(0);
    }
    lastPageAddr = page_addr;
    lastPageRo = slot.get();
    lastPageRw = slot.get();
    return *slot;
}

MemImage::Page &
MemImage::touchPage(Addr a)
{
    Addr page_addr = alignDown(a, PageSize);
    if (page_addr == lastPageAddr && lastPageRw)
        return *lastPageRw;
    return overlaySlot(page_addr, true);
}

std::uint8_t
MemImage::read8(Addr a) const
{
    const Page *p = findPage(a);
    return p ? (*p)[a % PageSize] : 0;
}

std::uint32_t
MemImage::read32(Addr a) const
{
    svf_assert((a & 3) == 0);
    const Page *p = findPage(a);
    if (!p)
        return 0;
    std::uint32_t v = 0;
    std::memcpy(&v, p->data() + a % PageSize, 4);
    return v;
}

std::uint64_t
MemImage::read64(Addr a) const
{
    svf_assert((a & 7) == 0);
    const Page *p = findPage(a);
    if (!p)
        return 0;
    std::uint64_t v = 0;
    std::memcpy(&v, p->data() + a % PageSize, 8);
    return v;
}

void
MemImage::write8(Addr a, std::uint8_t v)
{
    touchPage(a)[a % PageSize] = v;
}

void
MemImage::write32(Addr a, std::uint32_t v)
{
    svf_assert((a & 3) == 0);
    std::memcpy(touchPage(a).data() + a % PageSize, &v, 4);
}

void
MemImage::write64(Addr a, std::uint64_t v)
{
    svf_assert((a & 7) == 0);
    std::memcpy(touchPage(a).data() + a % PageSize, &v, 8);
}

void
MemImage::writeBytes(Addr a, const std::uint8_t *bytes, std::uint64_t n)
{
    while (n > 0) {
        Page &p = touchPage(a);
        std::uint64_t off = a % PageSize;
        std::uint64_t chunk = std::min(n, PageSize - off);
        std::memcpy(p.data() + off, bytes, chunk);
        a += chunk;
        bytes += chunk;
        n -= chunk;
    }
}

void
MemImage::readBytes(Addr a, std::uint8_t *out, std::uint64_t n) const
{
    while (n > 0) {
        std::uint64_t off = a % PageSize;
        std::uint64_t chunk = std::min(n, PageSize - off);
        Addr page_addr = alignDown(a, PageSize);
        const Page *p = nullptr;
        auto it = pages.find(page_addr);
        if (it != pages.end()) {
            p = it->second.get();
        } else if (base) {
            auto bit = base->find(page_addr);
            if (bit != base->end())
                p = bit->second.get();
        }
        if (p)
            std::memcpy(out, p->data() + off, chunk);
        else
            std::memset(out, 0, chunk);
        a += chunk;
        out += chunk;
        n -= chunk;
    }
}

std::uint64_t
MemImage::pagesAllocated() const
{
    if (!base)
        return pages.size();
    std::uint64_t n = pages.size();
    for (const auto &kv : *base)
        if (pages.find(kv.first) == pages.end())
            ++n;
    return n;
}

void
MemImage::forEachPage(
    const std::function<void(Addr, const std::uint8_t *)> &fn) const
{
    std::vector<Addr> addrs;
    addrs.reserve(pages.size() + (base ? base->size() : 0));
    for (const auto &kv : pages)
        addrs.push_back(kv.first);
    if (base)
        for (const auto &kv : *base)
            if (pages.find(kv.first) == pages.end())
                addrs.push_back(kv.first);
    std::sort(addrs.begin(), addrs.end());
    for (Addr a : addrs) {
        auto it = pages.find(a);
        if (it != pages.end())
            fn(a, it->second->data());
        else
            fn(a, base->find(a)->second->data());
    }
}

MemImage::SharedPagesPtr
MemImage::freezePages() const
{
    if (!pages.empty() || !base) {
        auto merged = std::make_shared<SharedPages>();
        if (base)
            *merged = *base;    // shallow: shared_ptr copies only
        for (auto &kv : pages)
            (*merged)[kv.first] =
                std::shared_ptr<const Page>(kv.second.release());
        pages.clear();
        base = std::move(merged);
        // Overlay pages kept their heap addresses but lost
        // writability; a stale lastPageRw would bypass CoW.
        invalidateLookupCache();
    }
    return base;
}

void
MemImage::adoptPages(SharedPagesPtr frozen)
{
    pages.clear();
    base = std::move(frozen);
    invalidateLookupCache();
}

const std::uint8_t *
MemImage::peekPage(Addr a) const
{
    const Page *p = findPage(a);
    return p ? p->data() : nullptr;
}

std::uint8_t *
MemImage::probePage(Addr a)
{
    // runFast shares one translation table between loads and stores,
    // so every pointer handed out here may be written through: a hit
    // on a frozen base page must CoW-copy before translation.
    Addr page_addr = alignDown(a, PageSize);
    if (page_addr == lastPageAddr && lastPageRw)
        return lastPageRw->data();
    auto it = pages.find(page_addr);
    if (it != pages.end()) {
        lastPageAddr = page_addr;
        lastPageRo = it->second.get();
        lastPageRw = it->second.get();
        return lastPageRw->data();
    }
    if (base && base->find(page_addr) != base->end())
        return overlaySlot(page_addr, true).data();
    return nullptr;
}

std::uint8_t *
MemImage::pageForWrite(Addr a)
{
    return touchPage(a).data();
}

void
MemImage::installPage(Addr page_addr, const std::uint8_t *bytes)
{
    svf_assert(page_addr % PageSize == 0);
    // Full-page overwrite: seeding the overlay copy from a shadowed
    // base page would be immediately thrown away.
    Page &p = overlaySlot(page_addr, false);
    std::memcpy(p.data(), bytes, PageSize);
}

void
MemImage::reset()
{
    pages.clear();
    base.reset();
    invalidateLookupCache();
}

} // namespace svf::sim
