#include "sim/mem_image.hh"

#include <algorithm>
#include <cstring>
#include <vector>

#include "base/bitfield.hh"
#include "base/logging.hh"
#include "isa/program.hh"

namespace svf::sim
{

void
MemImage::loadProgram(const isa::Program &prog)
{
    for (const auto &s : prog.sections)
        writeBytes(s.base, s.bytes.data(), s.bytes.size());
}

const MemImage::Page *
MemImage::findPage(Addr a) const
{
    Addr page_addr = alignDown(a, PageSize);
    if (page_addr == lastPageAddr)
        return lastPage;
    auto it = pages.find(page_addr);
    if (it == pages.end())
        return nullptr;
    lastPageAddr = page_addr;
    lastPage = it->second.get();
    return lastPage;
}

MemImage::Page &
MemImage::touchPage(Addr a)
{
    Addr page_addr = alignDown(a, PageSize);
    if (page_addr == lastPageAddr)
        return *lastPage;
    auto &slot = pages[page_addr];
    if (!slot) {
        slot = std::make_unique<Page>();
        slot->fill(0);
    }
    lastPageAddr = page_addr;
    lastPage = slot.get();
    return *lastPage;
}

std::uint8_t
MemImage::read8(Addr a) const
{
    const Page *p = findPage(a);
    return p ? (*p)[a % PageSize] : 0;
}

std::uint32_t
MemImage::read32(Addr a) const
{
    svf_assert((a & 3) == 0);
    const Page *p = findPage(a);
    if (!p)
        return 0;
    std::uint32_t v = 0;
    std::memcpy(&v, p->data() + a % PageSize, 4);
    return v;
}

std::uint64_t
MemImage::read64(Addr a) const
{
    svf_assert((a & 7) == 0);
    const Page *p = findPage(a);
    if (!p)
        return 0;
    std::uint64_t v = 0;
    std::memcpy(&v, p->data() + a % PageSize, 8);
    return v;
}

void
MemImage::write8(Addr a, std::uint8_t v)
{
    touchPage(a)[a % PageSize] = v;
}

void
MemImage::write32(Addr a, std::uint32_t v)
{
    svf_assert((a & 3) == 0);
    std::memcpy(touchPage(a).data() + a % PageSize, &v, 4);
}

void
MemImage::write64(Addr a, std::uint64_t v)
{
    svf_assert((a & 7) == 0);
    std::memcpy(touchPage(a).data() + a % PageSize, &v, 8);
}

void
MemImage::writeBytes(Addr a, const std::uint8_t *bytes, std::uint64_t n)
{
    while (n > 0) {
        Page &p = touchPage(a);
        std::uint64_t off = a % PageSize;
        std::uint64_t chunk = std::min(n, PageSize - off);
        std::memcpy(p.data() + off, bytes, chunk);
        a += chunk;
        bytes += chunk;
        n -= chunk;
    }
}

void
MemImage::readBytes(Addr a, std::uint8_t *out, std::uint64_t n) const
{
    while (n > 0) {
        std::uint64_t off = a % PageSize;
        std::uint64_t chunk = std::min(n, PageSize - off);
        auto it = pages.find(alignDown(a, PageSize));
        if (it == pages.end())
            std::memset(out, 0, chunk);
        else
            std::memcpy(out, it->second->data() + off, chunk);
        a += chunk;
        out += chunk;
        n -= chunk;
    }
}

void
MemImage::forEachPage(
    const std::function<void(Addr, const std::uint8_t *)> &fn) const
{
    std::vector<Addr> addrs;
    addrs.reserve(pages.size());
    for (const auto &kv : pages)
        addrs.push_back(kv.first);
    std::sort(addrs.begin(), addrs.end());
    for (Addr a : addrs)
        fn(a, pages.find(a)->second->data());
}

const std::uint8_t *
MemImage::peekPage(Addr a) const
{
    const Page *p = findPage(a);
    return p ? p->data() : nullptr;
}

std::uint8_t *
MemImage::probePage(Addr a)
{
    // findPage fills the mutable lookup cache with a non-const Page*;
    // reusing it keeps the const overload as the single lookup path.
    const Page *p = findPage(a);
    return p ? const_cast<Page *>(p)->data() : nullptr;
}

std::uint8_t *
MemImage::pageForWrite(Addr a)
{
    return touchPage(a).data();
}

void
MemImage::installPage(Addr page_addr, const std::uint8_t *bytes)
{
    svf_assert(page_addr % PageSize == 0);
    Page &p = touchPage(page_addr);
    std::memcpy(p.data(), bytes, PageSize);
}

void
MemImage::reset()
{
    pages.clear();
    invalidateLookupCache();
}

} // namespace svf::sim
