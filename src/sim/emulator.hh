/**
 * @file
 * Architectural (functional) emulator.
 *
 * The emulator is both a standalone reference executor and the
 * execute-ahead oracle that feeds the cycle-level timing model: each
 * step() returns an ExecInfo record describing exactly what the
 * instruction did (effective address, branch outcome, $sp movement),
 * which is everything the pipeline needs to model timing.
 */

#ifndef SVF_SIM_EMULATOR_HH
#define SVF_SIM_EMULATOR_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "base/types.hh"
#include "isa/inst.hh"
#include "isa/program.hh"
#include "sim/mem_image.hh"

namespace svf::sim
{

/** Everything one retired instruction did, for the timing model. */
struct ExecInfo
{
    InstSeq seq = 0;            //!< dynamic sequence number
    Addr pc = 0;
    Addr nextPc = 0;            //!< architecturally correct next PC
    const isa::DecodedInst *di = nullptr;

    Addr ea = 0;                //!< effective address (memRef only)
    RegVal memValue = 0;        //!< value loaded or stored

    bool taken = false;         //!< control: was the transfer taken?

    bool spWritten = false;     //!< did this instruction write $sp?
    RegVal oldSp = 0;
    RegVal newSp = 0;

    RegVal result = 0;          //!< value written to the dest register
};

/**
 * The emulator's complete architectural register/bookkeeping state,
 * exposed for the checkpoint subsystem (ckpt/snapshot.hh). Memory is
 * not included — snapshots serialize the MemImage page set directly.
 */
struct EmuArchState
{
    std::array<RegVal, isa::NumRegs> regs{};
    Addr pc = 0;
    Addr lowSp = 0;
    std::uint64_t icount = 0;
    bool halted = false;
    std::string output;
};

/**
 * Executes SVA programs at architectural level.
 */
class Emulator
{
  public:
    /**
     * Load @p prog: text is predecoded, sections are copied into
     * memory, $sp is set to the stack base and the PC to the entry.
     */
    explicit Emulator(const isa::Program &prog);

    /**
     * Execute one instruction.
     *
     * @param info receives the retirement record.
     * @retval false when the program has halted (info is not filled).
     */
    bool step(ExecInfo &info);

    /** Run up to @p max_insts instructions; returns count executed. */
    std::uint64_t run(std::uint64_t max_insts);

    /**
     * Batched functional hot loop: execute up to @p max_insts
     * instructions as a threaded-code interpreter over a compact
     * pre-translated copy of the text (see FastOp). No ExecInfo is
     * materialized, writes to $zero are pre-redirected to a sink
     * slot, the register file lives in a local array for the whole
     * batch, and memory runs through cached page pointers.
     *
     * Bit-identical to the same number of step() calls in every
     * observable respect — archState() (registers, PC, icount,
     * $sp watermark, halt flag, program output) and memory content,
     * including which pages exist — just several times faster. The
     * fast-forward half of interval sampling (ckpt::fastForward)
     * runs on this.
     *
     * @return instructions executed (short on halt).
     */
    std::uint64_t runFast(std::uint64_t max_insts);

    /** Has a halt been executed? */
    bool halted() const { return isHalted; }

    /** Total instructions retired. */
    std::uint64_t instCount() const { return icount; }

    /** Accumulated putint/putc output. */
    const std::string &output() const { return out; }

    /** Architectural register file. */
    RegVal reg(RegIndex r) const { return regs[r]; }

    /** Current PC. */
    Addr pc() const { return curPc; }

    /** Lowest $sp value observed so far (deepest stack). */
    Addr minSp() const { return lowSp; }

    /** Simulated memory (also writable for test setup). */
    MemImage &mem() { return memory; }
    const MemImage &mem() const { return memory; }

    /** Predecoded instruction at @p pc (must be within text). */
    const isa::DecodedInst &decodeAt(Addr pc) const;

    /** The program this emulator executes. */
    const isa::Program &program() const { return prog; }

    /** @name Checkpointing (see ckpt/snapshot.hh) */
    /// @{
    /** Copy out the architectural state (memory excluded). */
    EmuArchState archState() const;

    /**
     * Overwrite the architectural state. The emulator must have
     * been constructed from the same program the state was captured
     * on; memory is restored separately through mem().
     */
    void restoreArchState(const EmuArchState &state);
    /// @}

  private:
    RegVal readReg(RegIndex r) const
    {
        return r == isa::RegZero ? 0 : regs[r];
    }

    void writeReg(RegIndex r, RegVal v)
    {
        if (r != isa::RegZero)
            regs[r] = v;
    }

    /**
     * One pre-translated instruction for runFast(): a direct handler
     * index plus only the operand fields that handler reads, with
     * displacements pre-scaled (Ldah's <<16; branches hold the next
     * text-word delta) and $zero destinations redirected to the sink
     * slot one past the architectural file. 8 bytes — a fraction of
     * a DecodedInst — so the hot loop's working set stays small.
     */
    struct FastOp
    {
        std::uint8_t handler = 0;
        std::uint8_t a = 0;     //!< source index, or redirected dest
        std::uint8_t b = 0;     //!< source index
        std::uint8_t c = 0;     //!< IntOp redirected dest
        std::int32_t disp = 0;  //!< pre-scaled disp or literal
    };

    /** Translate decoded[] into fastOps (first runFast() call). */
    void buildFastOps();

    const isa::Program &prog;
    MemImage memory;
    std::vector<isa::DecodedInst> decoded;  //!< indexed by text word
    std::vector<FastOp> fastOps;            //!< runFast translation
    std::array<RegVal, isa::NumRegs> regs{};
    Addr curPc;
    Addr lowSp;
    std::uint64_t icount = 0;
    bool isHalted = false;
    std::string out;
};

} // namespace svf::sim

#endif // SVF_SIM_EMULATOR_HH
