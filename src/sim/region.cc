#include "sim/region.hh"

#include "isa/program.hh"

namespace svf::sim
{

Region
classify(Addr a)
{
    using namespace isa::layout;
    if (a >= StackLimit && a <= StackBase + 0x10000)
        return Region::Stack;
    if (a >= HeapBase && a < HeapLimit)
        return Region::Heap;
    if (a >= DataBase && a < HeapBase)
        return Region::Global;
    if (a >= TextBase && a < DataBase)
        return Region::Text;
    return Region::Other;
}

AccessMethod
methodOf(RegIndex base)
{
    if (base == isa::RegSP)
        return AccessMethod::Sp;
    if (base == isa::RegFP)
        return AccessMethod::Fp;
    return AccessMethod::Gpr;
}

const char *
regionName(Region r)
{
    switch (r) {
      case Region::Text: return "text";
      case Region::Global: return "global";
      case Region::Heap: return "heap";
      case Region::Stack: return "stack";
      case Region::Other: return "other";
    }
    return "?";
}

const char *
methodName(AccessMethod m)
{
    switch (m) {
      case AccessMethod::Sp: return "$sp";
      case AccessMethod::Fp: return "$fp";
      case AccessMethod::Gpr: return "$gpr";
    }
    return "?";
}

} // namespace svf::sim
