/**
 * @file
 * Sparse simulated physical memory.
 */

#ifndef SVF_SIM_MEM_IMAGE_HH
#define SVF_SIM_MEM_IMAGE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "base/types.hh"

namespace svf::isa { class Program; }

namespace svf::sim
{

/**
 * A sparse byte-addressable memory backed by demand-allocated 4KB
 * pages. Untouched memory reads as zero, matching demand-zero pages.
 */
class MemImage
{
  public:
    static constexpr std::uint64_t PageSize = 4096;

    MemImage() = default;

    /** Copy all initialized sections of @p prog into memory. */
    void loadProgram(const isa::Program &prog);

    /** @name Aligned scalar accessors (alignment is asserted). */
    /// @{
    std::uint8_t read8(Addr a) const;
    std::uint32_t read32(Addr a) const;
    std::uint64_t read64(Addr a) const;
    void write8(Addr a, std::uint8_t v);
    void write32(Addr a, std::uint32_t v);
    void write64(Addr a, std::uint64_t v);
    /// @}

    /** Bulk write used by the program loader. */
    void writeBytes(Addr a, const std::uint8_t *bytes,
                    std::uint64_t n);

    /**
     * Bulk read of @p n bytes into @p out; unallocated pages read as
     * zero. Walks the page table directly rather than through the
     * one-entry lookup cache, so interleaving bulk reads with the
     * scalar accessors never perturbs the cache's hit pattern.
     */
    void readBytes(Addr a, std::uint8_t *out, std::uint64_t n) const;

    /** Number of pages that have been touched. */
    std::uint64_t pagesAllocated() const { return pages.size(); }

    /**
     * Visit every allocated page in ascending address order —
     * the serialization path (ckpt/snapshot.hh). Deterministic
     * regardless of allocation order, and bypasses the lookup cache
     * entirely: the callback may read other pages through the scalar
     * accessors without either walk corrupting the other.
     *
     * The callback must not allocate or remove pages.
     */
    void forEachPage(
        const std::function<void(Addr, const std::uint8_t *)> &fn)
        const;

    /**
     * Install a full page of content at page-aligned @p page_addr,
     * allocating it if untouched (snapshot restore path).
     */
    void installPage(Addr page_addr, const std::uint8_t *bytes);

    /**
     * @name Raw page access for the batched interpreter
     *
     * Emulator::runFast caches the returned base pointer across
     * consecutive accesses to the same page, paying the page lookup
     * only on page changes. Pointers stay valid until reset() — pages
     * are never moved or dropped by ordinary reads and writes.
     */
    /// @{
    /** Base of the page containing @p a, or nullptr if untouched
     *  (never allocates — loads from untouched memory read zero). */
    const std::uint8_t *peekPage(Addr a) const;

    /**
     * Writable twin of peekPage: base of the page containing @p a,
     * or nullptr if untouched, never allocating. Lets the batched
     * interpreter keep one translation table for loads and stores —
     * only entries for pages that exist are ever cached, so a later
     * allocating store can't leave a stale "untouched" translation.
     */
    std::uint8_t *probePage(Addr a);

    /** Writable base of the page containing @p a, allocating it
     *  (zero-filled) on first touch. */
    std::uint8_t *pageForWrite(Addr a);
    /// @}

    /** Drop every page; memory reads as zero again. */
    void reset();

  private:
    using Page = std::array<std::uint8_t, PageSize>;

    const Page *findPage(Addr a) const;
    Page &touchPage(Addr a);

    /**
     * Any operation that removes or replaces pages must call this:
     * a stale cache entry would otherwise keep serving the old
     * page's bytes (or freed memory) for the cached address.
     */
    void invalidateLookupCache() const
    {
        lastPageAddr = ~Addr(0);
        lastPage = nullptr;
    }

    std::unordered_map<Addr, std::unique_ptr<Page>> pages;

    // One-entry lookup cache; instruction-dense pages make this hit
    // nearly always.
    mutable Addr lastPageAddr = ~Addr(0);
    mutable Page *lastPage = nullptr;
};

} // namespace svf::sim

#endif // SVF_SIM_MEM_IMAGE_HH
