/**
 * @file
 * Sparse simulated physical memory.
 */

#ifndef SVF_SIM_MEM_IMAGE_HH
#define SVF_SIM_MEM_IMAGE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

#include "base/types.hh"

namespace svf::isa { class Program; }

namespace svf::sim
{

/**
 * A sparse byte-addressable memory backed by demand-allocated 4KB
 * pages. Untouched memory reads as zero, matching demand-zero pages.
 */
class MemImage
{
  public:
    static constexpr std::uint64_t PageSize = 4096;

    MemImage() = default;

    /** Copy all initialized sections of @p prog into memory. */
    void loadProgram(const isa::Program &prog);

    /** @name Aligned scalar accessors (alignment is asserted). */
    /// @{
    std::uint8_t read8(Addr a) const;
    std::uint32_t read32(Addr a) const;
    std::uint64_t read64(Addr a) const;
    void write8(Addr a, std::uint8_t v);
    void write32(Addr a, std::uint32_t v);
    void write64(Addr a, std::uint64_t v);
    /// @}

    /** Bulk write used by the program loader. */
    void writeBytes(Addr a, const std::uint8_t *bytes,
                    std::uint64_t n);

    /** Number of pages that have been touched. */
    std::uint64_t pagesAllocated() const { return pages.size(); }

  private:
    using Page = std::array<std::uint8_t, PageSize>;

    const Page *findPage(Addr a) const;
    Page &touchPage(Addr a);

    std::unordered_map<Addr, std::unique_ptr<Page>> pages;

    // One-entry lookup cache; instruction-dense pages make this hit
    // nearly always.
    mutable Addr lastPageAddr = ~Addr(0);
    mutable Page *lastPage = nullptr;
};

} // namespace svf::sim

#endif // SVF_SIM_MEM_IMAGE_HH
