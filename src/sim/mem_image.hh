/**
 * @file
 * Sparse simulated physical memory.
 */

#ifndef SVF_SIM_MEM_IMAGE_HH
#define SVF_SIM_MEM_IMAGE_HH

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "base/types.hh"

namespace svf::isa { class Program; }

namespace svf::sim
{

/**
 * A sparse byte-addressable memory backed by demand-allocated 4KB
 * pages. Untouched memory reads as zero, matching demand-zero pages.
 *
 * The image is layered for copy-on-write snapshots: a shared,
 * immutable *base* map of pages (reference-counted, produced by
 * freezePages()) underneath a private mutable *overlay*. Reads serve
 * whichever layer holds the page (overlay shadows base); the first
 * write to a base page copies it into the overlay. adoptPages() makes
 * restoring a snapshot O(1) in page data — any number of images (one
 * per worker thread) can share one frozen base, because frozen pages
 * are never written through and shared_ptr refcounts are atomic.
 */
class MemImage
{
  public:
    static constexpr std::uint64_t PageSize = 4096;

    using Page = std::array<std::uint8_t, PageSize>;
    using SharedPages =
        std::unordered_map<Addr, std::shared_ptr<const Page>>;
    using SharedPagesPtr = std::shared_ptr<const SharedPages>;

    MemImage() = default;

    /** Copy all initialized sections of @p prog into memory. */
    void loadProgram(const isa::Program &prog);

    /** @name Aligned scalar accessors (alignment is asserted). */
    /// @{
    std::uint8_t read8(Addr a) const;
    std::uint32_t read32(Addr a) const;
    std::uint64_t read64(Addr a) const;
    void write8(Addr a, std::uint8_t v);
    void write32(Addr a, std::uint32_t v);
    void write64(Addr a, std::uint64_t v);
    /// @}

    /** Bulk write used by the program loader. */
    void writeBytes(Addr a, const std::uint8_t *bytes,
                    std::uint64_t n);

    /**
     * Bulk read of @p n bytes into @p out; unallocated pages read as
     * zero. Walks the page tables directly rather than through the
     * one-entry lookup cache, so interleaving bulk reads with the
     * scalar accessors never perturbs the cache's hit pattern.
     */
    void readBytes(Addr a, std::uint8_t *out, std::uint64_t n) const;

    /** Number of distinct pages that have been touched (a base page
     *  shadowed by an overlay copy counts once). */
    std::uint64_t pagesAllocated() const;

    /**
     * Visit every allocated page in ascending address order —
     * the serialization path (ckpt/snapshot.hh). Deterministic
     * regardless of allocation order, and bypasses the lookup cache
     * entirely: the callback may read other pages through the scalar
     * accessors without either walk corrupting the other. Overlay
     * pages shadow their base twins.
     *
     * The callback must not allocate or remove pages.
     */
    void forEachPage(
        const std::function<void(Addr, const std::uint8_t *)> &fn)
        const;

    /**
     * Install a full page of content at page-aligned @p page_addr,
     * allocating it if untouched (snapshot restore path).
     */
    void installPage(Addr page_addr, const std::uint8_t *bytes);

    /**
     * @name Copy-on-write snapshot interface
     *
     * freezePages() flattens base + overlay into a single immutable
     * shared map and re-points this image at it — no page content is
     * copied (overlay pages change owner, base pages change refcount)
     * and the observable bytes are unchanged, which is why it is
     * const. The returned map may outlive this image and may be
     * adopted by any number of other images concurrently; frozen
     * pages are never written (a write CoW-copies into the private
     * overlay first).
     */
    /// @{
    SharedPagesPtr freezePages() const;

    /** Replace all content with the frozen map @p frozen (snapshot
     *  restore). O(1) in page data. */
    void adoptPages(SharedPagesPtr frozen);
    /// @}

    /**
     * @name Raw page access for the batched interpreter
     *
     * Emulator::runFast caches the returned base pointer across
     * consecutive accesses to the same page, paying the page lookup
     * only on page changes. Pointers stay valid until reset(),
     * freezePages() or adoptPages() — ordinary reads and writes never
     * move or drop pages.
     */
    /// @{
    /** Base of the page containing @p a, or nullptr if untouched
     *  (never allocates — loads from untouched memory read zero). */
    const std::uint8_t *peekPage(Addr a) const;

    /**
     * Writable twin of peekPage: base of the page containing @p a,
     * or nullptr if untouched, never allocating fresh memory. Lets
     * the batched interpreter keep one translation table for loads
     * and stores — only entries for pages that exist are ever cached,
     * so a later allocating store can't leave a stale "untouched"
     * translation. A hit on a frozen base page CoW-copies it into the
     * overlay (the caller may write through the pointer).
     */
    std::uint8_t *probePage(Addr a);

    /** Writable base of the page containing @p a, allocating it
     *  (zero-filled) on first touch. */
    std::uint8_t *pageForWrite(Addr a);
    /// @}

    /** Drop every page (base and overlay); memory reads as zero. */
    void reset();

  private:
    const Page *findPage(Addr a) const;
    Page &touchPage(Addr a);
    /** Overlay slot for @p page_addr; when @p copy_base, a shadowed
     *  base page's content seeds the copy, else it starts zeroed. */
    Page &overlaySlot(Addr page_addr, bool copy_base);

    /**
     * Any operation that removes or replaces pages must call this: a
     * stale entry would otherwise keep serving the old page's bytes
     * (or freed memory) for the cached address. The cache is split
     * into a read pointer and a write pointer — a base page may be
     * cached for reading (lastPageRw == nullptr) without ever being
     * handed out writable.
     */
    void invalidateLookupCache() const
    {
        lastPageAddr = ~Addr(0);
        lastPageRo = nullptr;
        lastPageRw = nullptr;
    }

    // Mutable so that freezePages() can be const: flattening the
    // layers changes ownership bookkeeping, never observable bytes.
    mutable std::unordered_map<Addr, std::unique_ptr<Page>> pages;
    mutable SharedPagesPtr base;

    // One-entry lookup cache; instruction-dense pages make this hit
    // nearly always.
    mutable Addr lastPageAddr = ~Addr(0);
    mutable const Page *lastPageRo = nullptr;
    mutable Page *lastPageRw = nullptr;
};

} // namespace svf::sim

#endif // SVF_SIM_MEM_IMAGE_HH
