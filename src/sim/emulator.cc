#include "sim/emulator.hh"

#include "base/bitfield.hh"
#include "base/logging.hh"
#include "isa/decode.hh"
#include "isa/disasm.hh"

namespace svf::sim
{

Emulator::Emulator(const isa::Program &p)
    : prog(p), curPc(p.entry), lowSp(isa::layout::StackBase)
{
    memory.loadProgram(p);
    decoded.resize(p.textSize / 4);
    for (std::uint64_t i = 0; i < decoded.size(); ++i) {
        Addr pc = p.textBase + i * 4;
        std::uint32_t raw = p.fetchRaw(pc);
        if (!isa::decode(raw, decoded[i])) {
            fatal("illegal instruction 0x%08x at 0x%llx in '%s'",
                  raw, static_cast<unsigned long long>(pc),
                  p.name.c_str());
        }
    }
    regs.fill(0);
    regs[isa::RegSP] = isa::layout::StackBase;
}

const isa::DecodedInst &
Emulator::decodeAt(Addr pc) const
{
    if (pc < prog.textBase || pc >= prog.textBase + prog.textSize ||
        (pc & 3)) {
        panic("bad instruction fetch at 0x%llx (program '%s')",
              static_cast<unsigned long long>(pc), prog.name.c_str());
    }
    return decoded[(pc - prog.textBase) / 4];
}

bool
Emulator::step(ExecInfo &info)
{
    using namespace isa;

    if (isHalted)
        return false;

    const DecodedInst &di = decodeAt(curPc);
    info = ExecInfo();
    info.seq = icount;
    info.pc = curPc;
    info.di = &di;

    Addr next_pc = curPc + 4;
    RegVal old_sp = regs[RegSP];

    switch (di.op) {
      case Opcode::Lda:
        info.result = readReg(di.rb) +
            static_cast<RegVal>(static_cast<std::int64_t>(di.disp));
        writeReg(di.ra, info.result);
        break;

      case Opcode::Ldah:
        info.result = readReg(di.rb) + (static_cast<RegVal>(
            static_cast<std::int64_t>(di.disp)) << 16);
        writeReg(di.ra, info.result);
        break;

      case Opcode::Ldbu:
      case Opcode::Ldl:
      case Opcode::Ldq: {
        Addr ea = readReg(di.rb) +
            static_cast<RegVal>(static_cast<std::int64_t>(di.disp));
        info.ea = ea;
        RegVal v = 0;
        if (di.op == Opcode::Ldbu) {
            v = memory.read8(ea);
        } else if (di.op == Opcode::Ldl) {
            v = static_cast<RegVal>(static_cast<std::int64_t>(
                static_cast<std::int32_t>(memory.read32(ea))));
        } else {
            v = memory.read64(ea);
        }
        info.memValue = v;
        info.result = v;
        writeReg(di.ra, v);
        break;
      }

      case Opcode::Stb:
      case Opcode::Stl:
      case Opcode::Stq: {
        Addr ea = readReg(di.rb) +
            static_cast<RegVal>(static_cast<std::int64_t>(di.disp));
        info.ea = ea;
        RegVal v = readReg(di.ra);
        info.memValue = v;
        if (di.op == Opcode::Stb)
            memory.write8(ea, static_cast<std::uint8_t>(v));
        else if (di.op == Opcode::Stl)
            memory.write32(ea, static_cast<std::uint32_t>(v));
        else
            memory.write64(ea, v);
        break;
      }

      case Opcode::IntOp: {
        RegVal a = readReg(di.ra);
        RegVal b = di.useLit ? di.lit : readReg(di.rb);
        RegVal r = 0;
        auto sa = static_cast<std::int64_t>(a);
        auto sb = static_cast<std::int64_t>(b);
        switch (di.funct) {
          case IntFunct::Addq: r = a + b; break;
          case IntFunct::Subq: r = a - b; break;
          case IntFunct::Mulq: r = a * b; break;
          case IntFunct::And: r = a & b; break;
          case IntFunct::Bis: r = a | b; break;
          case IntFunct::Xor: r = a ^ b; break;
          case IntFunct::Sll: r = a << (b & 63); break;
          case IntFunct::Srl: r = a >> (b & 63); break;
          case IntFunct::Sra:
            r = static_cast<RegVal>(sa >> (b & 63));
            break;
          case IntFunct::Cmpeq: r = a == b; break;
          case IntFunct::Cmplt: r = sa < sb; break;
          case IntFunct::Cmple: r = sa <= sb; break;
          case IntFunct::Cmpult: r = a < b; break;
          case IntFunct::Cmpule: r = a <= b; break;
          case IntFunct::Umulh:
            r = static_cast<RegVal>(
                (static_cast<unsigned __int128>(a) *
                 static_cast<unsigned __int128>(b)) >> 64);
            break;
        }
        info.result = r;
        writeReg(di.rc, r);
        break;
      }

      case Opcode::Jsr: {
        Addr target = readReg(di.rb) & ~Addr(3);
        info.result = curPc + 4;
        writeReg(di.ra, curPc + 4);
        next_pc = target;
        info.taken = true;
        break;
      }

      case Opcode::Br:
      case Opcode::Bsr:
        info.result = curPc + 4;
        writeReg(di.ra, curPc + 4);
        next_pc = curPc + 4 +
            (static_cast<std::int64_t>(di.disp) << 2);
        info.taken = true;
        break;

      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Ble:
      case Opcode::Bgt:
      case Opcode::Bge: {
        auto v = static_cast<std::int64_t>(readReg(di.ra));
        bool taken = false;
        switch (di.op) {
          case Opcode::Beq: taken = v == 0; break;
          case Opcode::Bne: taken = v != 0; break;
          case Opcode::Blt: taken = v < 0; break;
          case Opcode::Ble: taken = v <= 0; break;
          case Opcode::Bgt: taken = v > 0; break;
          case Opcode::Bge: taken = v >= 0; break;
          default: break;
        }
        info.taken = taken;
        if (taken) {
            next_pc = curPc + 4 +
                (static_cast<std::int64_t>(di.disp) << 2);
        }
        break;
      }

      case Opcode::Sys:
        switch (di.sys) {
          case SysFunct::Halt:
            isHalted = true;
            break;
          case SysFunct::Putint:
            out += std::to_string(
                static_cast<std::int64_t>(readReg(RegA0)));
            out += '\n';
            break;
          case SysFunct::Putc:
            out += static_cast<char>(readReg(RegA0) & 0xff);
            break;
        }
        break;
    }

    if (regs[RegSP] != old_sp) {
        info.spWritten = true;
        info.oldSp = old_sp;
        info.newSp = regs[RegSP];
        if (regs[RegSP] < lowSp)
            lowSp = regs[RegSP];
    }

    info.nextPc = isHalted ? curPc : next_pc;
    curPc = next_pc;
    ++icount;
    return true;
}

EmuArchState
Emulator::archState() const
{
    EmuArchState s;
    s.regs = regs;
    s.pc = curPc;
    s.lowSp = lowSp;
    s.icount = icount;
    s.halted = isHalted;
    s.output = out;
    return s;
}

void
Emulator::restoreArchState(const EmuArchState &state)
{
    regs = state.regs;
    curPc = state.pc;
    lowSp = state.lowSp;
    icount = state.icount;
    isHalted = state.halted;
    out = state.output;
}

std::uint64_t
Emulator::run(std::uint64_t max_insts)
{
    ExecInfo info;
    std::uint64_t n = 0;
    while (n < max_insts && step(info))
        ++n;
    return n;
}

} // namespace svf::sim
