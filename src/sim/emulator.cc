#include "sim/emulator.hh"

#include <cstring>

#include "base/bitfield.hh"
#include "base/logging.hh"
#include "isa/decode.hh"
#include "isa/disasm.hh"

namespace svf::sim
{

Emulator::Emulator(const isa::Program &p)
    : prog(p), curPc(p.entry), lowSp(isa::layout::StackBase)
{
    memory.loadProgram(p);
    decoded.resize(p.textSize / 4);
    for (std::uint64_t i = 0; i < decoded.size(); ++i) {
        Addr pc = p.textBase + i * 4;
        std::uint32_t raw = p.fetchRaw(pc);
        if (!isa::decode(raw, decoded[i])) {
            fatal("illegal instruction 0x%08x at 0x%llx in '%s'",
                  raw, static_cast<unsigned long long>(pc),
                  p.name.c_str());
        }
    }
    regs.fill(0);
    regs[isa::RegSP] = isa::layout::StackBase;
}

const isa::DecodedInst &
Emulator::decodeAt(Addr pc) const
{
    if (pc < prog.textBase || pc >= prog.textBase + prog.textSize ||
        (pc & 3)) {
        panic("bad instruction fetch at 0x%llx (program '%s')",
              static_cast<unsigned long long>(pc), prog.name.c_str());
    }
    return decoded[(pc - prog.textBase) / 4];
}

bool
Emulator::step(ExecInfo &info)
{
    using namespace isa;

    if (isHalted)
        return false;

    const DecodedInst &di = decodeAt(curPc);
    info = ExecInfo();
    info.seq = icount;
    info.pc = curPc;
    info.di = &di;

    Addr next_pc = curPc + 4;
    RegVal old_sp = regs[RegSP];

    switch (di.op) {
      case Opcode::Lda:
        info.result = readReg(di.rb) +
            static_cast<RegVal>(static_cast<std::int64_t>(di.disp));
        writeReg(di.ra, info.result);
        break;

      case Opcode::Ldah:
        info.result = readReg(di.rb) + (static_cast<RegVal>(
            static_cast<std::int64_t>(di.disp)) << 16);
        writeReg(di.ra, info.result);
        break;

      case Opcode::Ldbu:
      case Opcode::Ldl:
      case Opcode::Ldq: {
        Addr ea = readReg(di.rb) +
            static_cast<RegVal>(static_cast<std::int64_t>(di.disp));
        info.ea = ea;
        RegVal v = 0;
        if (di.op == Opcode::Ldbu) {
            v = memory.read8(ea);
        } else if (di.op == Opcode::Ldl) {
            v = static_cast<RegVal>(static_cast<std::int64_t>(
                static_cast<std::int32_t>(memory.read32(ea))));
        } else {
            v = memory.read64(ea);
        }
        info.memValue = v;
        info.result = v;
        writeReg(di.ra, v);
        break;
      }

      case Opcode::Stb:
      case Opcode::Stl:
      case Opcode::Stq: {
        Addr ea = readReg(di.rb) +
            static_cast<RegVal>(static_cast<std::int64_t>(di.disp));
        info.ea = ea;
        RegVal v = readReg(di.ra);
        info.memValue = v;
        if (di.op == Opcode::Stb)
            memory.write8(ea, static_cast<std::uint8_t>(v));
        else if (di.op == Opcode::Stl)
            memory.write32(ea, static_cast<std::uint32_t>(v));
        else
            memory.write64(ea, v);
        break;
      }

      case Opcode::IntOp: {
        RegVal a = readReg(di.ra);
        RegVal b = di.useLit ? di.lit : readReg(di.rb);
        RegVal r = 0;
        auto sa = static_cast<std::int64_t>(a);
        auto sb = static_cast<std::int64_t>(b);
        switch (di.funct) {
          case IntFunct::Addq: r = a + b; break;
          case IntFunct::Subq: r = a - b; break;
          case IntFunct::Mulq: r = a * b; break;
          case IntFunct::And: r = a & b; break;
          case IntFunct::Bis: r = a | b; break;
          case IntFunct::Xor: r = a ^ b; break;
          case IntFunct::Sll: r = a << (b & 63); break;
          case IntFunct::Srl: r = a >> (b & 63); break;
          case IntFunct::Sra:
            r = static_cast<RegVal>(sa >> (b & 63));
            break;
          case IntFunct::Cmpeq: r = a == b; break;
          case IntFunct::Cmplt: r = sa < sb; break;
          case IntFunct::Cmple: r = sa <= sb; break;
          case IntFunct::Cmpult: r = a < b; break;
          case IntFunct::Cmpule: r = a <= b; break;
          case IntFunct::Umulh:
            r = static_cast<RegVal>(
                (static_cast<unsigned __int128>(a) *
                 static_cast<unsigned __int128>(b)) >> 64);
            break;
        }
        info.result = r;
        writeReg(di.rc, r);
        break;
      }

      case Opcode::Jsr: {
        Addr target = readReg(di.rb) & ~Addr(3);
        info.result = curPc + 4;
        writeReg(di.ra, curPc + 4);
        next_pc = target;
        info.taken = true;
        break;
      }

      case Opcode::Br:
      case Opcode::Bsr:
        info.result = curPc + 4;
        writeReg(di.ra, curPc + 4);
        next_pc = curPc + 4 +
            (static_cast<std::int64_t>(di.disp) << 2);
        info.taken = true;
        break;

      case Opcode::Beq:
      case Opcode::Bne:
      case Opcode::Blt:
      case Opcode::Ble:
      case Opcode::Bgt:
      case Opcode::Bge: {
        auto v = static_cast<std::int64_t>(readReg(di.ra));
        bool taken = false;
        switch (di.op) {
          case Opcode::Beq: taken = v == 0; break;
          case Opcode::Bne: taken = v != 0; break;
          case Opcode::Blt: taken = v < 0; break;
          case Opcode::Ble: taken = v <= 0; break;
          case Opcode::Bgt: taken = v > 0; break;
          case Opcode::Bge: taken = v >= 0; break;
          default: break;
        }
        info.taken = taken;
        if (taken) {
            next_pc = curPc + 4 +
                (static_cast<std::int64_t>(di.disp) << 2);
        }
        break;
      }

      case Opcode::Sys:
        switch (di.sys) {
          case SysFunct::Halt:
            isHalted = true;
            break;
          case SysFunct::Putint:
            out += std::to_string(
                static_cast<std::int64_t>(readReg(RegA0)));
            out += '\n';
            break;
          case SysFunct::Putc:
            out += static_cast<char>(readReg(RegA0) & 0xff);
            break;
        }
        break;
    }

    if (regs[RegSP] != old_sp) {
        info.spWritten = true;
        info.oldSp = old_sp;
        info.newSp = regs[RegSP];
        if (regs[RegSP] < lowSp)
            lowSp = regs[RegSP];
    }

    info.nextPc = isHalted ? curPc : next_pc;
    curPc = next_pc;
    ++icount;
    return true;
}

EmuArchState
Emulator::archState() const
{
    EmuArchState s;
    s.regs = regs;
    s.pc = curPc;
    s.lowSp = lowSp;
    s.icount = icount;
    s.halted = isHalted;
    s.output = out;
    return s;
}

void
Emulator::restoreArchState(const EmuArchState &state)
{
    regs = state.regs;
    curPc = state.pc;
    lowSp = state.lowSp;
    icount = state.icount;
    isHalted = state.halted;
    out = state.output;
}

std::uint64_t
Emulator::run(std::uint64_t max_insts)
{
    ExecInfo info;
    std::uint64_t n = 0;
    while (n < max_insts && step(info))
        ++n;
    return n;
}

/**
 * Handler indices for FastOp::handler. The IntOp blocks are laid out
 * in isa::IntFunct order so translation is FH_Addq + funct (register
 * forms) or FH_AddqL + funct (literal forms).
 */
enum FastHandler : std::uint8_t
{
    FH_Lda, FH_Ldah,
    FH_Ldbu, FH_Ldl, FH_Ldq,
    FH_Stb, FH_Stl, FH_Stq,
    FH_Addq, FH_Subq, FH_Mulq, FH_And, FH_Bis, FH_Xor,
    FH_Sll, FH_Srl, FH_Sra,
    FH_Cmpeq, FH_Cmplt, FH_Cmple, FH_Cmpult, FH_Cmpule, FH_Umulh,
    FH_AddqL, FH_SubqL, FH_MulqL, FH_AndL, FH_BisL, FH_XorL,
    FH_SllL, FH_SrlL, FH_SraL,
    FH_CmpeqL, FH_CmpltL, FH_CmpleL, FH_CmpultL, FH_CmpuleL,
    FH_UmulhL,
    FH_Jsr, FH_Br,
    FH_Beq, FH_Bne, FH_Blt, FH_Ble, FH_Bgt, FH_Bge,
    FH_Halt, FH_Putint, FH_Putc,
    FH_BadPc,
};

void
Emulator::buildFastOps()
{
    using namespace isa;

    // Writes whose destination is $zero go to the sink slot one past
    // the architectural file, so handlers never test the dest index.
    auto wr = [](RegIndex r) -> std::uint8_t {
        return r == RegZero ? NumRegs : r;
    };

    // One sentinel op sits past the last instruction so sequential
    // flow can fall off the end of the text without a bounds check
    // in the per-instruction footer: the sentinel dispatches to the
    // bad-PC exit with `word` already naming the offending slot.
    // Branches are the only other way out of the text, and they
    // check their own (rarely out-of-range) targets.
    fastOps.resize(decoded.size() + 1);
    fastOps.back().handler = FH_BadPc;
    for (std::size_t i = 0; i < decoded.size(); ++i) {
        const DecodedInst &di = decoded[i];
        FastOp &f = fastOps[i];
        switch (di.op) {
          case Opcode::Lda:
            f.handler = FH_Lda;
            f.a = wr(di.ra);
            f.b = di.rb;
            f.disp = di.disp;
            break;

          case Opcode::Ldah:
            f.handler = FH_Ldah;
            f.a = wr(di.ra);
            f.b = di.rb;
            // Pre-shift; -32768..32767 times 65536 stays in int32.
            f.disp = di.disp * 65536;
            break;

          case Opcode::Ldbu:
          case Opcode::Ldl:
          case Opcode::Ldq:
            f.handler = di.op == Opcode::Ldbu ? FH_Ldbu
                      : di.op == Opcode::Ldl ? FH_Ldl : FH_Ldq;
            f.a = wr(di.ra);
            f.b = di.rb;
            f.disp = di.disp;
            break;

          case Opcode::Stb:
          case Opcode::Stl:
          case Opcode::Stq:
            f.handler = di.op == Opcode::Stb ? FH_Stb
                      : di.op == Opcode::Stl ? FH_Stl : FH_Stq;
            f.a = di.ra;        // store source: read, not redirected
            f.b = di.rb;
            f.disp = di.disp;
            break;

          case Opcode::IntOp:
            f.a = di.ra;
            f.c = wr(di.rc);
            if (di.useLit) {
                f.handler = static_cast<std::uint8_t>(
                    FH_AddqL + static_cast<unsigned>(di.funct));
                f.disp = di.lit;
            } else {
                f.handler = static_cast<std::uint8_t>(
                    FH_Addq + static_cast<unsigned>(di.funct));
                f.b = di.rb;
            }
            break;

          case Opcode::Jsr:
            f.handler = FH_Jsr;
            f.a = wr(di.ra);
            f.b = di.rb;
            break;

          case Opcode::Br:
          case Opcode::Bsr:
            f.handler = FH_Br;
            f.a = wr(di.ra);
            f.disp = 1 + di.disp;   // delta in text words
            break;

          case Opcode::Beq:
          case Opcode::Bne:
          case Opcode::Blt:
          case Opcode::Ble:
          case Opcode::Bgt:
          case Opcode::Bge:
            switch (di.op) {
              case Opcode::Beq: f.handler = FH_Beq; break;
              case Opcode::Bne: f.handler = FH_Bne; break;
              case Opcode::Blt: f.handler = FH_Blt; break;
              case Opcode::Ble: f.handler = FH_Ble; break;
              case Opcode::Bgt: f.handler = FH_Bgt; break;
              default: f.handler = FH_Bge; break;
            }
            f.a = di.ra;
            f.disp = 1 + di.disp;   // delta in text words
            break;

          case Opcode::Sys:
            f.handler = di.sys == SysFunct::Halt ? FH_Halt
                      : di.sys == SysFunct::Putint ? FH_Putint
                      : FH_Putc;
            break;
        }
    }
}

/*
 * Per-instruction epilogue: fold the just-executed instruction into
 * the $sp watermark, charge it against the budget, and fetch the
 * next FastOp. `word` tracks the PC in text-word units so sequential
 * flow is ++word with no address arithmetic. No bounds check here:
 * sequential flow can reach at most the FH_BadPc sentinel one slot
 * past the text, and branch handlers check their own targets
 * (underflow wraps to a huge index, so one unsigned compare covers
 * both directions); both routes funnel into ff_bad_pc, which
 * reconstructs the byte PC and panics like step() would.
 */
#define SVF_FF_FOOTER()                                              \
    do {                                                             \
        if (lregs[RegSP] < low_sp)                                   \
            low_sp = lregs[RegSP];                                   \
        if (++executed >= max_insts)                                 \
            goto ff_done;                                            \
        op = ops + word;                                             \
    } while (0)

#if defined(__GNUC__)
// Threaded dispatch: each handler jumps straight to the next via a
// computed goto, giving the host branch predictor one indirect jump
// per guest instruction with per-site history.
#define SVF_FF_CASE(x) lbl_##x
#define SVF_FF_NEXT() do { SVF_FF_FOOTER(); \
        goto *handlers[op->handler]; } while (0)
#else
// Portable fallback: one switch in a loop over the same handlers.
#define SVF_FF_CASE(x) case x
#define SVF_FF_NEXT() do { SVF_FF_FOOTER(); } while (0); break
#endif

std::uint64_t
Emulator::runFast(std::uint64_t max_insts)
{
    using namespace isa;

    if (isHalted || max_insts == 0)
        return 0;
    if (fastOps.empty())
        buildFastOps();

    const Addr text_base = prog.textBase;
    const std::uint64_t text_words = fastOps.size() - 1; // sentinel
    const FastOp *ops = fastOps.data();

    // Direct-map page translation tables: one inline compare + load
    // per access instead of the hash-map probe that pointer-chasing
    // workloads pay when they alternate pages faster than MemImage's
    // one-entry cache can follow. Loads and stores keep separate
    // tables so a load never forces a copy-on-write: the load table
    // may point into frozen snapshot base pages (read-only), the
    // store table only ever holds private overlay pages. Only pages
    // that exist are ever cached in the load table — loads from
    // untouched memory take the slow path every time — so an
    // allocating store can't leave a stale "untouched" translation
    // behind. The two tables share their indexing, and a store
    // slow-path refreshes the load entry for its page: the first
    // write CoW-copies the page, so any read-only translation of the
    // old frozen bytes must die with it. Pointers stay valid for the
    // whole batch: pages never move outside freeze/adopt/reset, none
    // of which can run mid-batch.
    constexpr Addr PageMask = sim::MemImage::PageSize - 1;
    constexpr unsigned PageShift = 12;
    static_assert(sim::MemImage::PageSize == Addr(1) << PageShift);
    constexpr std::size_t TlbEntries = 256;
    struct TransEntry
    {
        Addr page;
        std::uint8_t *ptr;
    };
    struct TransEntryRo
    {
        Addr page;
        const std::uint8_t *ptr;
    };
    TransEntryRo ltlb[TlbEntries];
    TransEntry stlb[TlbEntries];
    for (TransEntryRo &e : ltlb)
        e = {~Addr(0), nullptr};
    for (TransEntry &e : stlb)
        e = {~Addr(0), nullptr};

    auto load_ptr = [&](Addr ea) -> const std::uint8_t * {
        Addr pa = ea & ~PageMask;
        TransEntryRo &e = ltlb[(ea >> PageShift) & (TlbEntries - 1)];
        if (e.page != pa) {
            const std::uint8_t *p = memory.peekPage(ea);
            if (!p)
                return nullptr;
            e.page = pa;
            e.ptr = p;
        }
        return e.ptr + (ea & PageMask);
    };
    auto store_ptr = [&](Addr ea) -> std::uint8_t * {
        Addr pa = ea & ~PageMask;
        std::size_t idx = (ea >> PageShift) & (TlbEntries - 1);
        TransEntry &e = stlb[idx];
        if (e.page != pa) {
            e.ptr = memory.pageForWrite(ea);
            e.page = pa;
            ltlb[idx] = {pa, e.ptr};
        }
        return e.ptr + (ea & PageMask);
    };

    // The register file lives in a local array for the whole batch so
    // the memory stores above cannot alias it (uint8_t* may alias
    // class members; a fresh local array provably doesn't overlap).
    // Slot NumRegs is the $zero write sink; slot RegZero is only ever
    // read and holds the architectural zero.
    RegVal lregs[NumRegs + 1];
    std::memcpy(lregs, regs.data(), sizeof(RegVal) * NumRegs);
    lregs[NumRegs] = 0;

    Addr low_sp = lowSp;
    std::uint64_t executed = 0;
    std::uint64_t word = (curPc - text_base) >> 2;
    const FastOp *op;

    if (curPc & 3)
        decodeAt(curPc);            // panics with step()'s diagnostic
    if (word >= text_words)
        goto ff_bad_pc;
    op = ops + word;

#if defined(__GNUC__)
    {
        static const void *handlers[] = {
            &&lbl_FH_Lda, &&lbl_FH_Ldah,
            &&lbl_FH_Ldbu, &&lbl_FH_Ldl, &&lbl_FH_Ldq,
            &&lbl_FH_Stb, &&lbl_FH_Stl, &&lbl_FH_Stq,
            &&lbl_FH_Addq, &&lbl_FH_Subq, &&lbl_FH_Mulq,
            &&lbl_FH_And, &&lbl_FH_Bis, &&lbl_FH_Xor,
            &&lbl_FH_Sll, &&lbl_FH_Srl, &&lbl_FH_Sra,
            &&lbl_FH_Cmpeq, &&lbl_FH_Cmplt, &&lbl_FH_Cmple,
            &&lbl_FH_Cmpult, &&lbl_FH_Cmpule, &&lbl_FH_Umulh,
            &&lbl_FH_AddqL, &&lbl_FH_SubqL, &&lbl_FH_MulqL,
            &&lbl_FH_AndL, &&lbl_FH_BisL, &&lbl_FH_XorL,
            &&lbl_FH_SllL, &&lbl_FH_SrlL, &&lbl_FH_SraL,
            &&lbl_FH_CmpeqL, &&lbl_FH_CmpltL, &&lbl_FH_CmpleL,
            &&lbl_FH_CmpultL, &&lbl_FH_CmpuleL, &&lbl_FH_UmulhL,
            &&lbl_FH_Jsr, &&lbl_FH_Br,
            &&lbl_FH_Beq, &&lbl_FH_Bne, &&lbl_FH_Blt,
            &&lbl_FH_Ble, &&lbl_FH_Bgt, &&lbl_FH_Bge,
            &&lbl_FH_Halt, &&lbl_FH_Putint, &&lbl_FH_Putc,
            &&lbl_FH_BadPc,
        };
        goto *handlers[op->handler];
#else
    for (;;) {
        switch (op->handler) {
#endif

        SVF_FF_CASE(FH_Lda):
            lregs[op->a] = lregs[op->b] + static_cast<RegVal>(
                static_cast<std::int64_t>(op->disp));
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Ldah):
            lregs[op->a] = lregs[op->b] + static_cast<RegVal>(
                static_cast<std::int64_t>(op->disp));
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Ldbu): {
            Addr ea = lregs[op->b] + static_cast<RegVal>(
                static_cast<std::int64_t>(op->disp));
            const std::uint8_t *p = load_ptr(ea);
            lregs[op->a] = p ? *p : 0;
            ++word;
            SVF_FF_NEXT();
        }

        SVF_FF_CASE(FH_Ldl): {
            Addr ea = lregs[op->b] + static_cast<RegVal>(
                static_cast<std::int64_t>(op->disp));
            svf_assert((ea & 3) == 0);
            std::uint32_t raw = 0;
            if (const std::uint8_t *p = load_ptr(ea))
                std::memcpy(&raw, p, 4);
            lregs[op->a] = static_cast<RegVal>(
                static_cast<std::int64_t>(
                    static_cast<std::int32_t>(raw)));
            ++word;
            SVF_FF_NEXT();
        }

        SVF_FF_CASE(FH_Ldq): {
            Addr ea = lregs[op->b] + static_cast<RegVal>(
                static_cast<std::int64_t>(op->disp));
            svf_assert((ea & 7) == 0);
            std::uint64_t raw = 0;
            if (const std::uint8_t *p = load_ptr(ea))
                std::memcpy(&raw, p, 8);
            lregs[op->a] = raw;
            ++word;
            SVF_FF_NEXT();
        }

        SVF_FF_CASE(FH_Stb): {
            Addr ea = lregs[op->b] + static_cast<RegVal>(
                static_cast<std::int64_t>(op->disp));
            *store_ptr(ea) = static_cast<std::uint8_t>(lregs[op->a]);
            ++word;
            SVF_FF_NEXT();
        }

        SVF_FF_CASE(FH_Stl): {
            Addr ea = lregs[op->b] + static_cast<RegVal>(
                static_cast<std::int64_t>(op->disp));
            svf_assert((ea & 3) == 0);
            std::uint32_t raw =
                static_cast<std::uint32_t>(lregs[op->a]);
            std::memcpy(store_ptr(ea), &raw, 4);
            ++word;
            SVF_FF_NEXT();
        }

        SVF_FF_CASE(FH_Stq): {
            Addr ea = lregs[op->b] + static_cast<RegVal>(
                static_cast<std::int64_t>(op->disp));
            svf_assert((ea & 7) == 0);
            std::uint64_t raw = lregs[op->a];
            std::memcpy(store_ptr(ea), &raw, 8);
            ++word;
            SVF_FF_NEXT();
        }

        SVF_FF_CASE(FH_Addq):
            lregs[op->c] = lregs[op->a] + lregs[op->b];
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Subq):
            lregs[op->c] = lregs[op->a] - lregs[op->b];
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Mulq):
            lregs[op->c] = lregs[op->a] * lregs[op->b];
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_And):
            lregs[op->c] = lregs[op->a] & lregs[op->b];
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Bis):
            lregs[op->c] = lregs[op->a] | lregs[op->b];
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Xor):
            lregs[op->c] = lregs[op->a] ^ lregs[op->b];
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Sll):
            lregs[op->c] = lregs[op->a] << (lregs[op->b] & 63);
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Srl):
            lregs[op->c] = lregs[op->a] >> (lregs[op->b] & 63);
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Sra):
            lregs[op->c] = static_cast<RegVal>(
                static_cast<std::int64_t>(lregs[op->a]) >>
                (lregs[op->b] & 63));
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Cmpeq):
            lregs[op->c] = lregs[op->a] == lregs[op->b];
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Cmplt):
            lregs[op->c] = static_cast<std::int64_t>(lregs[op->a]) <
                static_cast<std::int64_t>(lregs[op->b]);
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Cmple):
            lregs[op->c] = static_cast<std::int64_t>(lregs[op->a]) <=
                static_cast<std::int64_t>(lregs[op->b]);
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Cmpult):
            lregs[op->c] = lregs[op->a] < lregs[op->b];
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Cmpule):
            lregs[op->c] = lregs[op->a] <= lregs[op->b];
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Umulh):
            lregs[op->c] = static_cast<RegVal>(
                (static_cast<unsigned __int128>(lregs[op->a]) *
                 static_cast<unsigned __int128>(lregs[op->b])) >> 64);
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_AddqL):
            lregs[op->c] = lregs[op->a] +
                static_cast<RegVal>(op->disp);
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_SubqL):
            lregs[op->c] = lregs[op->a] -
                static_cast<RegVal>(op->disp);
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_MulqL):
            lregs[op->c] = lregs[op->a] *
                static_cast<RegVal>(op->disp);
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_AndL):
            lregs[op->c] = lregs[op->a] &
                static_cast<RegVal>(op->disp);
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_BisL):
            lregs[op->c] = lregs[op->a] |
                static_cast<RegVal>(op->disp);
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_XorL):
            lregs[op->c] = lregs[op->a] ^
                static_cast<RegVal>(op->disp);
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_SllL):
            lregs[op->c] = lregs[op->a] << (op->disp & 63);
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_SrlL):
            lregs[op->c] = lregs[op->a] >> (op->disp & 63);
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_SraL):
            lregs[op->c] = static_cast<RegVal>(
                static_cast<std::int64_t>(lregs[op->a]) >>
                (op->disp & 63));
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_CmpeqL):
            lregs[op->c] = lregs[op->a] ==
                static_cast<RegVal>(op->disp);
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_CmpltL):
            lregs[op->c] = static_cast<std::int64_t>(lregs[op->a]) <
                op->disp;
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_CmpleL):
            lregs[op->c] = static_cast<std::int64_t>(lregs[op->a]) <=
                op->disp;
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_CmpultL):
            lregs[op->c] = lregs[op->a] <
                static_cast<RegVal>(op->disp);
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_CmpuleL):
            lregs[op->c] = lregs[op->a] <=
                static_cast<RegVal>(op->disp);
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_UmulhL):
            lregs[op->c] = static_cast<RegVal>(
                (static_cast<unsigned __int128>(lregs[op->a]) *
                 static_cast<unsigned __int128>(
                     static_cast<RegVal>(op->disp))) >> 64);
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Jsr): {
            Addr target = lregs[op->b] & ~Addr(3);
            lregs[op->a] = text_base + ((word + 1) << 2);
            word = (target - text_base) >> 2;
            if (word >= text_words)
                goto ff_bad_pc;
            SVF_FF_NEXT();
        }

        SVF_FF_CASE(FH_Br):
            lregs[op->a] = text_base + ((word + 1) << 2);
            word += static_cast<std::int64_t>(op->disp);
            if (word >= text_words)
                goto ff_bad_pc;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Beq):
            word += static_cast<std::int64_t>(lregs[op->a]) == 0
                ? static_cast<std::int64_t>(op->disp) : 1;
            if (word >= text_words)
                goto ff_bad_pc;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Bne):
            word += static_cast<std::int64_t>(lregs[op->a]) != 0
                ? static_cast<std::int64_t>(op->disp) : 1;
            if (word >= text_words)
                goto ff_bad_pc;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Blt):
            word += static_cast<std::int64_t>(lregs[op->a]) < 0
                ? static_cast<std::int64_t>(op->disp) : 1;
            if (word >= text_words)
                goto ff_bad_pc;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Ble):
            word += static_cast<std::int64_t>(lregs[op->a]) <= 0
                ? static_cast<std::int64_t>(op->disp) : 1;
            if (word >= text_words)
                goto ff_bad_pc;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Bgt):
            word += static_cast<std::int64_t>(lregs[op->a]) > 0
                ? static_cast<std::int64_t>(op->disp) : 1;
            if (word >= text_words)
                goto ff_bad_pc;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Bge):
            word += static_cast<std::int64_t>(lregs[op->a]) >= 0
                ? static_cast<std::int64_t>(op->disp) : 1;
            if (word >= text_words)
                goto ff_bad_pc;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Halt):
            // Counts as executed and the PC still advances, exactly
            // like step(); the watermark fold happens on the way out.
            isHalted = true;
            ++word;
            if (lregs[RegSP] < low_sp)
                low_sp = lregs[RegSP];
            ++executed;
            goto ff_done;

        SVF_FF_CASE(FH_Putint):
            out += std::to_string(
                static_cast<std::int64_t>(lregs[RegA0]));
            out += '\n';
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_Putc):
            out += static_cast<char>(lregs[RegA0] & 0xff);
            ++word;
            SVF_FF_NEXT();

        SVF_FF_CASE(FH_BadPc):
            // The sentinel one slot past the text: sequential flow
            // fell off the end, and `word` names the offending slot.
            goto ff_bad_pc;

#if defined(__GNUC__)
    }
#else
        }
    }
#endif

  ff_bad_pc:
    // Reconstruct the byte PC (exact: both sides are word-aligned)
    // and panic with the same diagnostic step() gives.
    decodeAt(text_base + (word << 2));

  ff_done:
    std::memcpy(regs.data(), lregs, sizeof(RegVal) * NumRegs);
    lowSp = low_sp;
    icount += executed;
    curPc = text_base + (word << 2);
    return executed;
}

#undef SVF_FF_FOOTER
#undef SVF_FF_CASE
#undef SVF_FF_NEXT

} // namespace svf::sim
