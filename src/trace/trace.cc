/**
 * @file
 * Trace spec parsing and the binary / Chrome-JSON writers.
 */

#include "trace/trace.hh"

#include <cstdio>

#include "base/logging.hh"
#include "base/str.hh"
#include "ckpt/serialize.hh"

namespace svf::trace
{

namespace
{

constexpr std::uint8_t kMagic[4] = {'S', 'V', 'F', 'T'};
constexpr std::uint32_t kFormatVersion = 1;

struct CategoryDef
{
    const char *name;
    std::uint32_t bit;
};

constexpr CategoryDef kCategories[] = {
    {"core", CatCore},         {"svf", CatSvf},
    {"sc", CatSc},             {"cache", CatCache},
    {"disambig", CatDisambig}, {"replay", CatReplay},
};

} // namespace

const char *
opName(Op op)
{
    switch (op) {
      case Op::Fetch: return "fetch";
      case Op::Issue: return "issue";
      case Op::Commit: return "commit";
      case Op::SvfAlloc: return "svf_alloc";
      case Op::SvfSpill: return "svf_spill";
      case Op::SvfFill: return "svf_fill";
      case Op::SvfMorph: return "svf_morph";
      case Op::SvfReroute: return "svf_reroute";
      case Op::SvfWriteback: return "svf_writeback";
      case Op::ScHit: return "sc_hit";
      case Op::ScMiss: return "sc_miss";
      case Op::Dl1Miss: return "dl1_miss";
      case Op::L2Miss: return "l2_miss";
      case Op::DisambigScan: return "disambig_scan";
      case Op::DisambigFilterHit: return "disambig_filter_hit";
      case Op::RerouteSquash: return "reroute_squash";
      case Op::NumOps: break;
    }
    return "?";
}

const char *
categoryName(std::uint32_t bit)
{
    for (const auto &c : kCategories)
        if (c.bit == bit)
            return c.name;
    return "?";
}

std::uint32_t
parseCategories(const std::string &spec)
{
    std::uint32_t mask = 0;
    for (const auto &tok : split(spec, '+')) {
        if (tok == "all") {
            mask |= CatAll;
            continue;
        }
        if (tok == "none")
            continue;
        bool found = false;
        for (const auto &c : kCategories) {
            if (tok == c.name) {
                mask |= c.bit;
                found = true;
                break;
            }
        }
        if (!found)
            fatal("trace: unknown category '%s' (valid: core, svf, sc, "
                  "cache, disambig, replay, all, none)", tok.c_str());
    }
    return mask;
}

std::string
categoriesStr(std::uint32_t mask)
{
    if ((mask & CatAll) == CatAll)
        return "all";
    if (!mask)
        return "none";
    std::string out;
    for (const auto &c : kCategories) {
        if (mask & c.bit) {
            if (!out.empty())
                out += '+';
            out += c.name;
        }
    }
    return out;
}

TraceSpec
TraceSpec::parse(const std::string &spec)
{
    TraceSpec t;
    if (spec.empty())
        return t;

    auto parts = split(spec, ',');
    t.path = parts[0];
    if (t.path.empty())
        fatal("trace: empty file name in 'trace=%s'", spec.c_str());

    // Grammar after the path: one optional non-numeric category list,
    // then an optional numeric start,len pair.
    std::size_t i = 1;
    std::uint64_t n;
    if (i < parts.size() && !parseUint(parts[i], n))
        t.mask = parseCategories(parts[i++]);
    if (i < parts.size()) {
        if (i + 1 >= parts.size() || !parseUint(parts[i], t.start) ||
            !parseUint(parts[i + 1], t.len))
            fatal("trace: expected 'start,len' cycle window in "
                  "'trace=%s' (grammar: FILE[,cats][,start,len])",
                  spec.c_str());
        i += 2;
    }
    if (i != parts.size())
        fatal("trace: trailing junk in 'trace=%s' (grammar: "
              "FILE[,cats][,start,len])", spec.c_str());
    return t;
}

std::string
TraceSpec::str() const
{
    if (!enabled())
        return "";
    std::string out = path + "," + categoriesStr(mask);
    if (start || len) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), ",%llu,%llu",
                      static_cast<unsigned long long>(start),
                      static_cast<unsigned long long>(len));
        out += buf;
    }
    return out;
}

bool
writeBinary(const std::string &path, const std::vector<Event> &events)
{
    ckpt::ByteWriter w;
    for (auto b : kMagic)
        w.u8(b);
    w.u32(kFormatVersion);
    w.u64(events.size());
    for (const auto &e : events) {
        w.u64(e.cycle);
        w.u32(e.op);
        w.u32(e.stream);
        w.u64(e.a0);
        w.u64(e.a1);
    }
    w.u64(ckpt::fnv1a(w.data().data(), w.data().size()));
    if (!ckpt::writeFileAtomic(path, w.data())) {
        warn("trace: could not write '%s'", path.c_str());
        return false;
    }
    return true;
}

bool
readBinary(const std::string &path, std::vector<Event> &out)
{
    std::vector<std::uint8_t> bytes;
    if (!ckpt::readFile(path, bytes)) {
        warn("trace: could not read '%s'", path.c_str());
        return false;
    }
    if (bytes.size() < sizeof(kMagic) + 4 + 8 + 8) {
        warn("trace: '%s' is truncated", path.c_str());
        return false;
    }
    const std::size_t body = bytes.size() - 8;
    ckpt::ByteReader digest_r(bytes.data() + body, 8);
    if (digest_r.u64() != ckpt::fnv1a(bytes.data(), body)) {
        warn("trace: '%s' failed its digest check", path.c_str());
        return false;
    }
    ckpt::ByteReader r(bytes.data(), body);
    for (auto b : kMagic) {
        if (r.u8() != b) {
            warn("trace: '%s' is not an svf_trace binary", path.c_str());
            return false;
        }
    }
    if (std::uint32_t v = r.u32(); v != kFormatVersion) {
        warn("trace: '%s' has format version %u, expected %u",
             path.c_str(), v, kFormatVersion);
        return false;
    }
    const std::uint64_t count = r.u64();
    out.clear();
    out.reserve(count);
    for (std::uint64_t i = 0; i < count && r.ok(); ++i) {
        Event e;
        e.cycle = r.u64();
        e.op = r.u32();
        e.stream = r.u32();
        e.a0 = r.u64();
        e.a1 = r.u64();
        out.push_back(e);
    }
    if (!r.ok() || out.size() != count) {
        warn("trace: '%s' ended early (%zu of %llu events)",
             path.c_str(), out.size(),
             static_cast<unsigned long long>(count));
        return false;
    }
    return true;
}

bool
writeChromeJson(const std::string &path, const std::vector<Event> &events)
{
    // Chrome trace-event format, JSON-object flavor: one instant
    // event per record, ts = cycle (microsecond units as far as the
    // viewer cares — only relative spacing matters), pid = stream
    // (core or sample interval), tid = category bit index so
    // Perfetto groups each category on its own track.
    std::string out;
    out.reserve(96 * events.size() + 64);
    out += "{\"traceEvents\":[\n";
    char buf[256];
    bool first = true;
    for (const auto &e : events) {
        const Op op = static_cast<Op>(e.op);
        unsigned tid = 0;
        for (std::uint32_t bits = opCategory(op); bits > 1; bits >>= 1)
            ++tid;
        std::snprintf(buf, sizeof(buf),
                      "%s{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\","
                      "\"ts\":%llu,\"pid\":%u,\"tid\":%u,\"s\":\"t\","
                      "\"args\":{\"a0\":%llu,\"a1\":%llu}}",
                      first ? "" : ",\n", opName(op),
                      categoryName(opCategory(op)),
                      static_cast<unsigned long long>(e.cycle),
                      e.stream, tid,
                      static_cast<unsigned long long>(e.a0),
                      static_cast<unsigned long long>(e.a1));
        out += buf;
        first = false;
    }
    out += "\n],\"displayTimeUnit\":\"ns\"}\n";
    std::vector<std::uint8_t> bytes(out.begin(), out.end());
    if (!ckpt::writeFileAtomic(path, bytes)) {
        warn("trace: could not write '%s'", path.c_str());
        return false;
    }
    return true;
}

bool
writeAll(const TraceSpec &spec, const std::vector<Event> &events)
{
    // Compiled-out builds (SVF_TRACING=OFF) write nothing at all: an
    // empty-but-valid stream would read as "the machine did nothing"
    // rather than "nothing was recorded".
    if (!kTracingCompiled)
        return false;
    bool ok = writeBinary(spec.path, events);
    ok = writeChromeJson(spec.path + ".json", events) && ok;
    return ok;
}

} // namespace svf::trace
