/**
 * @file
 * Simulation event tracing.
 *
 * A per-core, lock-free event sink the cycle model can feed from its
 * hot loops: each OooCore owns at most one CoreTracer pointer, every
 * emit is a bounds-checked push_back into that tracer's private
 * buffer, and buffers are only merged after the owning thread has
 * finished (interval-order fold in the sampled engine, straight take
 * for full runs) — no locks, no atomics, no sharing while hot.
 *
 * Tracing is an observer, never a participant: with the tracer null
 * (trace= absent) the only cost is an untaken branch per emit site,
 * and with it attached the simulated counters are bit-identical to
 * the untraced run (pinned by tests/integration/trace_equiv_test).
 * `trace=` is therefore excluded from the setup key, like ckpt= and
 * pjobs=.
 *
 * Output is written twice per run: a compact binary stream at FILE
 * (magic/version/digest-protected, see writeBinary) and a Chrome
 * trace-event JSON at FILE.json that loads directly into Perfetto
 * (ui.perfetto.dev) or chrome://tracing, with one instant event per
 * record (ts = cycle, pid = core or sample interval). The
 * tools/svf_trace CLI dumps, filters, summarizes and re-converts the
 * binary form.
 *
 * Compile-out: configure with -DSVF_TRACING=OFF to define
 * SVF_TRACE_DISABLED, which turns every SVF_TRACE macro into a no-op
 * and lets the compiler drop the `if (tracer)` diff blocks via
 * kTracingCompiled. Counters are bit-identical in either build.
 */

#ifndef SVF_TRACE_TRACE_HH
#define SVF_TRACE_TRACE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace svf::trace
{

/** Every traced event type. Keep opName() and kOpCategory in sync. */
enum class Op : std::uint32_t
{
    Fetch,              // a0=seq, a1=pc
    Issue,              // a0=seq, a1=mem route (MemRoute) or 0
    Commit,             // a0=seq, a1=pc
    SvfAlloc,           // a0=ea,  a1=quadwords allocated (kill-on-grow)
    SvfSpill,           // a0=ea,  a1=quadwords spilled to memory
    SvfFill,            // a0=seq, a1=ea (demand fill on a morphed ref)
    SvfMorph,           // a0=seq, a1=ea (front-end morph)
    SvfReroute,         // a0=seq, a1=ea (post-addr-calc reroute)
    SvfWriteback,       // a0=bytes written back on context switch
    ScHit,              // a0=ea,  a1=is_write
    ScMiss,             // a0=ea,  a1=is_write
    Dl1Miss,            // a0=ea,  a1=is_write
    L2Miss,             // a0=ea,  a1=is_write
    DisambigScan,       // a0=seq, a1=ea (load walked older stores)
    DisambigFilterHit,  // a0=seq, a1=ea (granule index skipped the walk)
    RerouteSquash,      // a0=squashed-from seq, a1=colliding store seq
    NumOps
};

/** Category bits, OR-able into TraceSpec::mask. */
enum Category : std::uint32_t
{
    CatCore = 1u << 0,      // fetch / issue / commit
    CatSvf = 1u << 1,       // SVF alloc/spill/fill/morph/reroute/writeback
    CatSc = 1u << 2,        // stack-cache hit/miss
    CatCache = 1u << 3,     // DL1 / L2 miss
    CatDisambig = 1u << 4,  // disambiguation scans and filter hits
    CatReplay = 1u << 5,    // reroute-collision squash replay
    CatAll = (1u << 6) - 1,
};

/** Display name of one op ("commit", "svf_morph", ...). */
const char *opName(Op op);

/** Category bit of one op (inline table — emit fast path). */
inline constexpr std::uint32_t kOpCategory[] = {
    CatCore,     // Fetch
    CatCore,     // Issue
    CatCore,     // Commit
    CatSvf,      // SvfAlloc
    CatSvf,      // SvfSpill
    CatSvf,      // SvfFill
    CatSvf,      // SvfMorph
    CatSvf,      // SvfReroute
    CatSvf,      // SvfWriteback
    CatSc,       // ScHit
    CatSc,       // ScMiss
    CatCache,    // Dl1Miss
    CatCache,    // L2Miss
    CatDisambig, // DisambigScan
    CatDisambig, // DisambigFilterHit
    CatReplay,   // RerouteSquash
};
static_assert(sizeof(kOpCategory) / sizeof(kOpCategory[0]) ==
              static_cast<std::size_t>(Op::NumOps));

inline std::uint32_t
opCategory(Op op)
{
    return kOpCategory[static_cast<unsigned>(op)];
}

/** Display name of one category bit ("core", "svf", ...). */
const char *categoryName(std::uint32_t bit);

/**
 * Parse a '+'-joined category list ("svf+cache"); "all" and "none"
 * are accepted. Fatals with the valid names on an unknown token.
 */
std::uint32_t parseCategories(const std::string &spec);

/** Render a mask back to a '+'-joined list. */
std::string categoriesStr(std::uint32_t mask);

/**
 * Where and what to trace, parsed from the config value
 * `trace=FILE[,cats][,start,len]`:
 *
 *   trace=svf.trace                   everything, whole run
 *   trace=svf.trace,svf+replay        two categories only
 *   trace=svf.trace,5000,2000         cycles [5000, 7000)
 *   trace=svf.trace,cache,0,10000     combined
 *
 * The cycle window is in core cycles; in a sampled run each detailed
 * window's core starts at cycle 0, so the window applies per
 * interval. Not part of the setup key.
 */
struct TraceSpec
{
    std::string path;                       // empty => tracing off
    std::uint32_t mask = CatAll;
    std::uint64_t start = 0;
    std::uint64_t len = 0;                  // 0 => unbounded

    bool enabled() const { return !path.empty(); }

    /** Parse the config-value grammar above; fatal on misuse. */
    static TraceSpec parse(const std::string &spec);

    /** Render back to the config-value form (diagnostics). */
    std::string str() const;
};

/** One traced event: 32 bytes, fixed layout (see writeBinary). */
struct Event
{
    std::uint64_t cycle;
    std::uint32_t op;       // Op
    std::uint32_t stream;   // core id, or sample interval index
    std::uint64_t a0;
    std::uint64_t a1;
};

/**
 * The per-core sink. One owner thread appends through emit(); the
 * harness takes the buffer after the run. Category mask and cycle
 * window are folded into the emit fast path so a masked-out armed
 * tracer costs one compare per site.
 */
class CoreTracer
{
  public:
    CoreTracer(const TraceSpec &spec, std::uint32_t stream)
        : mask(spec.mask), first(spec.start),
          last(spec.len ? spec.start + spec.len : ~std::uint64_t(0)),
          streamId(stream)
    {
    }

    void
    emit(std::uint64_t cycle, Op op, std::uint64_t a0, std::uint64_t a1)
    {
        if (!(mask & opCategory(op)))
            return;
        if (cycle < first || cycle >= last)
            return;
        buf.push_back({cycle, static_cast<std::uint32_t>(op), streamId,
                       a0, a1});
    }

    /**
     * Would any event in @p cats pass the category filter? Emit
     * sites that must do extra read-only work to *construct* an
     * event (the counter-diff blocks in uarch/ooo_core.cc) check
     * this first, so a narrow trace= only pays for the categories
     * it keeps.
     */
    bool wants(std::uint32_t cats) const { return (mask & cats) != 0; }

    const std::vector<Event> &events() const { return buf; }
    std::vector<Event> take() { return std::move(buf); }

  private:
    std::uint32_t mask;
    std::uint64_t first;
    std::uint64_t last;
    std::uint32_t streamId;
    std::vector<Event> buf;
};

/**
 * Write the compact binary stream ("SVFT", version 1, count, raw
 * events, FNV-1a digest; atomic temp+rename). Warns and returns
 * false on I/O failure.
 */
bool writeBinary(const std::string &path, const std::vector<Event> &events);

/** Read a binary stream back; false on missing/corrupt/mismatched. */
bool readBinary(const std::string &path, std::vector<Event> &out);

/** Write Chrome trace-event JSON (Perfetto-loadable). */
bool writeChromeJson(const std::string &path,
                     const std::vector<Event> &events);

/**
 * Emit both formats for one finished run: binary at spec.path and
 * Chrome JSON at spec.path + ".json". Returns false (after warning)
 * if either write failed. In a compiled-out build (SVF_TRACING=OFF)
 * nothing is written and false is returned — no file, rather than a
 * valid-looking empty trace.
 */
bool writeAll(const TraceSpec &spec, const std::vector<Event> &events);

/** True when the emit sites are compiled in (SVF_TRACING=ON). */
#ifdef SVF_TRACE_DISABLED
inline constexpr bool kTracingCompiled = false;
#else
inline constexpr bool kTracingCompiled = true;
#endif

} // namespace svf::trace

/**
 * Emit-site macro: null-checks the tracer and vanishes entirely under
 * SVF_TRACE_DISABLED. `op` is a bare Op enumerator name.
 */
#ifdef SVF_TRACE_DISABLED
#define SVF_TRACE(tracer, cycle, op, a0, a1) ((void)0)
#else
#define SVF_TRACE(tracer, cycle, op, a0, a1)                                 \
    do {                                                                     \
        if (tracer)                                                          \
            (tracer)->emit((cycle), ::svf::trace::Op::op, (a0), (a1));       \
    } while (0)
#endif

#endif // SVF_TRACE_TRACE_HH
