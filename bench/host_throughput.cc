/**
 * @file
 * Host-throughput trajectory: how fast the *simulator* runs, not the
 * simulated machine. Every job pair simulates the identical machine
 * twice — once per issue scheduler (SVF_SCHED=scan vs event; see
 * uarch/sched.hh) — and reports simulated MIPS and cycles/sec per
 * host wall second. The workload mix deliberately includes a
 * stall-heavy configuration (large window, tiny caches, 60-cycle
 * memory) where idle-cycle skipping pays most.
 *
 * The JSON report (default BENCH_host_throughput.json, svf-bench-1
 * schema) is the repo's performance baseline: commit it once, and
 * `baseline=FILE` reruns fail (exit 1) when any job's host MIPS
 * regresses more than 30% against the committed numbers — the tier2
 * ctest wires this up.
 *
 * Extra config keys beyond the standard bench_util set:
 *     baseline=FILE   committed BENCH_host_throughput.json to
 *                     compare against (absent jobs are ignored)
 *     tolerance=PCT   allowed host-MIPS regression (default 30)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/runner.hh"
#include "sim/emulator.hh"
#include "stats/table.hh"

using namespace svf;

namespace
{

/** One machine/workload combination measured under both schedulers. */
struct Scenario
{
    std::string name;
    std::string workload;
    std::string input;
    uarch::MachineConfig machine;
};

std::vector<Scenario>
buildScenarios()
{
    std::vector<Scenario> out;

    // Stall-heavy: the paper's 16-wide window over a cache starved
    // to a fraction of its Table 2 size, on pointer-chasing mcf.
    // Nearly every load misses to memory, so the window drains in
    // bursts with long idle gaps — the event scheduler's best case.
    {
        Scenario s;
        s.name = "stall_heavy";
        s.workload = "mcf";
        s.input = "inp";
        s.machine = harness::baselineConfig(16);
        s.machine.hier.dl1.size = 4 * 1024;
        s.machine.hier.dl1.assoc = 1;
        s.machine.hier.l2.size = 16 * 1024;
        s.machine.hier.l2.assoc = 1;
        out.push_back(std::move(s));
    }

    // Table 2 machine on a compute-dense workload: the busy-cycle
    // case, where skipping rarely triggers and the ready list must
    // not cost more than the scan saved.
    {
        Scenario s;
        s.name = "busy";
        s.workload = "gzip";
        s.input = "program";
        s.machine = harness::baselineConfig(16);
        out.push_back(std::move(s));
    }

    // SVF machine with squash-prone morphing: replay storms rebuild
    // the scheduler state wholesale, the worst case for the event
    // mode's bookkeeping.
    {
        Scenario s;
        s.name = "svf_squash";
        s.workload = "parser";
        s.input = "ref";
        s.machine = harness::baselineConfig(16);
        harness::applySvf(s.machine, 1024, 2);
        out.push_back(std::move(s));
    }

    return out;
}

/**
 * Pull derived.host_mips for @p job out of a committed svf-bench-1
 * document with a plain string scan — records are flat and the
 * emitter's field order is fixed, so a JSON parser would be dead
 * weight here.
 */
double
extractHostMips(const std::string &text, const std::string &job)
{
    std::string anchor = "\"name\": \"" + job + "\"";
    size_t at = text.find(anchor);
    if (at == std::string::npos)
        return -1.0;
    size_t end = text.find('\n', at);
    std::string field = "\"host_mips\": ";
    size_t f = text.find(field, at);
    if (f == std::string::npos ||
        (end != std::string::npos && f > end)) {
        return -1.0;
    }
    return std::strtod(text.c_str() + f + field.size(), nullptr);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    // jobs=1: wall-time fairness beats throughput here — parallel
    // workers would contend for cores and distort each job's MIPS.
    bench::Bench b(argc, argv,
                   "Host throughput: scan vs event issue scheduler",
                   "simulator performance baseline (no paper figure)",
                   400'000, 1);
    b.jsonDefault("BENCH_host_throughput.json");
    std::string baseline_path = b.cfg().getString("baseline", "");
    double tolerance = b.cfg().getDouble("tolerance", 30.0);

    const std::vector<Scenario> scenarios = buildScenarios();
    harness::ExperimentPlan plan;
    for (const Scenario &sc : scenarios) {
        harness::RunSetup s;
        s.workload = sc.workload;
        s.input = sc.input;
        s.maxInsts = b.budget();
        for (uarch::SchedKind kind :
             {uarch::SchedKind::Scan, uarch::SchedKind::Event}) {
            s.machine = sc.machine;
            s.machine.sched = kind;
            plan.add(sc.name + "/" + uarch::schedKindName(kind), s);
        }
    }
    const auto res = b.run(plan);

    stats::Table t({"scenario", "scan insts/s", "event insts/s",
                    "event/scan", "scan cyc/s", "event cyc/s"});
    std::vector<double> ratios;
    for (size_t i = 0; i < scenarios.size(); ++i) {
        const harness::JobOutcome &scan = res[2 * i];
        const harness::JobOutcome &event = res[2 * i + 1];
        double scan_mips =
            harness::hostMips(scan.run(), scan.wallSeconds);
        double event_mips =
            harness::hostMips(event.run(), event.wallSeconds);
        double ratio =
            scan_mips > 0.0 ? event_mips / scan_mips : 0.0;
        ratios.push_back(ratio);

        char rbuf[32];
        std::snprintf(rbuf, sizeof(rbuf), "%.2fx", ratio);
        t.addRow();
        t.cell(scenarios[i].name);
        t.cell(harness::rate(scan_mips * 1e6, 2));
        t.cell(harness::rate(event_mips * 1e6, 2));
        t.cell(rbuf);
        t.cell(harness::rate(harness::hostCyclesPerSec(
            scan.run(), scan.wallSeconds), 2));
        t.cell(harness::rate(harness::hostCyclesPerSec(
            event.run(), event.wallSeconds), 2));
    }
    b.print(t);
    std::printf("\ntotal simulation wall time: %.2fs\n",
                b.runner().totalWallSeconds());

    // Fast-forward rate: the checkpoint subsystem's functional-only
    // mode on the same mcf workload the stall_heavy pair simulated
    // in detail — the speed that interval sampling (sample=K,W,D)
    // buys between detailed windows.
    {
        const workloads::WorkloadSpec &spec =
            workloads::workload("mcf");
        isa::Program prog = spec.build("inp", spec.defaultScale);
        sim::Emulator emu(prog);
        auto t0 = std::chrono::steady_clock::now();
        std::uint64_t n = emu.run(b.budget());
        std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - t0;
        double ff_mips =
            dt.count() > 0.0 ? double(n) / dt.count() / 1e6 : 0.0;
        double det_mips =
            harness::hostMips(res[0].run(), res[0].wallSeconds);
        std::printf("fast-forward (mcf, functional): %.2f M "
                    "insts/s", ff_mips);
        if (det_mips > 0.0) {
            std::printf("  (%.1fx the detailed scan rate)",
                        ff_mips / det_mips);
        }
        std::printf("\n");
    }

    // Slurp the baseline *before* finish() writes the JSON sink:
    // the default sink path and the committed baseline are the same
    // file, and comparing the fresh run against itself would make
    // every rerun from the repo root vacuously pass.
    std::string text;
    if (!baseline_path.empty()) {
        std::ifstream in(baseline_path);
        if (!in) {
            std::fprintf(stderr,
                         "error: cannot read baseline '%s'\n",
                         baseline_path.c_str());
            return 1;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        text = ss.str();
    }

    int rc = b.finish();

    if (!baseline_path.empty()) {
        for (const harness::JobOutcome &o : res) {
            double base = extractHostMips(text, o.name);
            if (base <= 0.0)
                continue;       // job not in the committed baseline
            double cur = harness::hostMips(o.run(), o.wallSeconds);
            double delta = (cur / base - 1.0) * 100.0;
            std::printf("baseline %-24s %8.2f -> %8.2f MIPS "
                        "(%+.1f%%)\n",
                        o.name.c_str(), base, cur, delta);
            if (delta < -tolerance) {
                std::fprintf(stderr,
                             "FAIL: '%s' host MIPS regressed "
                             "%.1f%% (tolerance %.0f%%)\n",
                             o.name.c_str(), -delta, tolerance);
                rc = 1;
            }
        }
    }
    return rc;
}
