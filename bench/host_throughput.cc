/**
 * @file
 * Host-throughput trajectory: how fast the *simulator* runs, not the
 * simulated machine. Every job pair simulates the identical machine
 * twice — once per issue scheduler (SVF_SCHED=scan vs event; see
 * uarch/sched.hh) — and reports simulated MIPS and cycles/sec per
 * host wall second. The workload mix deliberately includes a
 * stall-heavy configuration (large window, tiny caches, 60-cycle
 * memory) where idle-cycle skipping pays most.
 *
 * The JSON report (default BENCH_host_throughput.json, svf-bench-1
 * schema) is the repo's performance baseline: commit it once, and
 * `baseline=FILE` reruns fail (exit 1) when any job's host MIPS
 * regresses more than 30% against the committed numbers — the tier2
 * ctest wires this up.
 *
 * Beyond the scan/event pairs, two more host-performance axes are
 * measured and fed into the same JSON/baseline machinery as
 * synthesized jobs:
 *   - ff_functional/step vs ff_functional/runfast: the per-step
 *     emulator against the batched interpreter (Emulator::runFast)
 *     that interval sampling fast-forwards on, verified bit-identical
 *     before the rates are reported;
 *   - sampled_mcf/pjobsN: one interval-sampled run at several
 *     pjobs= worker counts (harness/experiment.hh), verified
 *     byte-identical across thread counts;
 *   - dispatch/local vs dispatch/served: a cache-hit request served
 *     by a local Runner memo against the same request round-tripped
 *     through an in-process svf-simd on a Unix socket, with the
 *     daemon's dispatch overhead gated at < 5 ms/request.
 *
 * Two observability gates ride along. The trace-overhead gate pins
 * the cost of the compiled-in emit sites (trace/trace.hh): a run
 * with a muted tracer attached (mask=0, every event rejected at the
 * emit check) does strictly more per-site work than the tracing-off
 * null-pointer test, so "muted within 2% of off" bounds what
 * tracing-off can cost. And the host phase profiler (harness/
 * prof.hh) is always armed here: the wall/CPU breakdown is printed
 * as a table and embedded in the JSON report's "profile" section.
 *
 * Extra config keys beyond the standard bench_util set:
 *     baseline=FILE   committed BENCH_host_throughput.json to
 *                     compare against (absent jobs are ignored)
 *     tolerance=PCT   allowed host-MIPS regression (default 30)
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/hash.hh"
#include "bench_util.hh"
#include "harness/counters.hh"
#include "harness/experiment.hh"
#include "harness/prof.hh"
#include "harness/reporting.hh"
#include "harness/runner.hh"
#include "serve/client.hh"
#include "serve/server.hh"
#include "sim/emulator.hh"
#include "stats/table.hh"
#include "trace/trace.hh"

using namespace svf;

namespace
{

/** One machine/workload combination measured under both schedulers. */
struct Scenario
{
    std::string name;
    std::string workload;
    std::string input;
    uarch::MachineConfig machine;
};

std::vector<Scenario>
buildScenarios()
{
    std::vector<Scenario> out;

    // Stall-heavy: the paper's 16-wide window over a cache starved
    // to a fraction of its Table 2 size, on pointer-chasing mcf.
    // Nearly every load misses to memory, so the window drains in
    // bursts with long idle gaps — the event scheduler's best case.
    {
        Scenario s;
        s.name = "stall_heavy";
        s.workload = "mcf";
        s.input = "inp";
        s.machine = harness::baselineConfig(16);
        s.machine.hier.dl1.size = 4 * 1024;
        s.machine.hier.dl1.assoc = 1;
        s.machine.hier.l2.size = 16 * 1024;
        s.machine.hier.l2.assoc = 1;
        out.push_back(std::move(s));
    }

    // Table 2 machine on a compute-dense workload: the busy-cycle
    // case, where skipping rarely triggers and the ready list must
    // not cost more than the scan saved.
    {
        Scenario s;
        s.name = "busy";
        s.workload = "gzip";
        s.input = "program";
        s.machine = harness::baselineConfig(16);
        out.push_back(std::move(s));
    }

    // SVF machine with squash-prone morphing: replay storms rebuild
    // the scheduler state wholesale, the worst case for the event
    // mode's bookkeeping.
    {
        Scenario s;
        s.name = "svf_squash";
        s.workload = "parser";
        s.input = "ref";
        s.machine = harness::baselineConfig(16);
        harness::applySvf(s.machine, 1024, 2);
        out.push_back(std::move(s));
    }

    return out;
}

/**
 * Pull derived.host_mips for @p job out of a committed svf-bench-1
 * document with a plain string scan — records are flat and the
 * emitter's field order is fixed, so a JSON parser would be dead
 * weight here.
 */
double
extractHostMips(const std::string &text, const std::string &job)
{
    std::string anchor = "\"name\": \"" + job + "\"";
    size_t at = text.find(anchor);
    if (at == std::string::npos)
        return -1.0;
    size_t end = text.find('\n', at);
    std::string field = "\"host_mips\": ";
    size_t f = text.find(field, at);
    if (f == std::string::npos ||
        (end != std::string::npos && f > end)) {
        return -1.0;
    }
    return std::strtod(text.c_str() + f + field.size(), nullptr);
}

/**
 * Pull profile.phases.<phase>.wall_seconds out of a committed
 * svf-bench-1 document, same string-scan idiom as extractHostMips.
 * @return -1 when the baseline has no such phase.
 */
double
extractPhaseWall(const std::string &text, const char *phase)
{
    size_t prof = text.find("\"profile\":");
    if (prof == std::string::npos)
        return -1.0;
    std::string anchor = std::string("\"") + phase + "\": {";
    size_t at = text.find(anchor, prof);
    if (at == std::string::npos)
        return -1.0;
    std::string field = "\"wall_seconds\": ";
    size_t f = text.find(field, at);
    if (f == std::string::npos)
        return -1.0;
    return std::strtod(text.c_str() + f + field.size(), nullptr);
}

/**
 * The baseline's whole "profile" object (balanced-brace substring),
 * for re-embedding as "profile_baseline" in the fresh report. Empty
 * when the baseline predates profile sections.
 */
std::string
extractProfileObject(const std::string &text)
{
    size_t prof = text.find("\"profile\":");
    if (prof == std::string::npos)
        return "";
    size_t open = text.find('{', prof);
    if (open == std::string::npos)
        return "";
    int depth = 0;
    for (size_t i = open; i < text.size(); ++i) {
        if (text[i] == '{')
            ++depth;
        else if (text[i] == '}' && --depth == 0)
            return text.substr(open, i - open + 1);
    }
    return "";
}

/** profile.elapsed_seconds of a committed baseline, or -1. */
double
extractProfileElapsed(const std::string &text)
{
    size_t prof = text.find("\"profile\":");
    if (prof == std::string::npos)
        return -1.0;
    std::string field = "\"elapsed_seconds\": ";
    size_t f = text.find(field, prof);
    if (f == std::string::npos)
        return -1.0;
    return std::strtod(text.c_str() + f + field.size(), nullptr);
}

/**
 * Wrap a hand-timed measurement as a Runner-style outcome. @p key
 * must be the setup's canonical key (or a stable synthesized one for
 * measurements without a RunSetup) — a zero key in the JSON would
 * make rows indistinguishable from each other across reports.
 */
harness::JobOutcome
pseudoOutcome(const std::string &name, std::uint64_t key,
              harness::RunResult r, double wall_seconds)
{
    harness::JobOutcome o;
    o.name = name;
    o.key = key;
    o.wallSeconds = wall_seconds;
    o.value = std::move(r);
    return o;
}

/** Did two runs of the same emulator program end in the same state? */
bool
sameArchState(const sim::Emulator &a, const sim::Emulator &b)
{
    sim::EmuArchState sa = a.archState();
    sim::EmuArchState sb = b.archState();
    return sa.regs == sb.regs && sa.pc == sb.pc &&
           sa.lowSp == sb.lowSp && sa.icount == sb.icount &&
           sa.halted == sb.halted && sa.output == sb.output;
}

/**
 * Every observable field of two sampled results, byte-compared. The
 * counters go through the registry (harness/counters.hh) so a
 * counter added there is automatically part of this identity check;
 * only the sampling estimate and the correctness flags sit outside
 * the registry and stay enumerated by hand.
 */
bool
sameSampledResult(const harness::RunResult &a,
                  const harness::RunResult &b)
{
    for (const harness::CounterDef *d : harness::runCounters()) {
        if (d->get(a) != d->get(b))
            return false;
    }
    const ckpt::SampleEstimate &ea = a.sampled, &eb = b.sampled;
    if (ea.intervals != eb.intervals ||
        ea.totalInsts != eb.totalInsts ||
        ea.ffInsts != eb.ffInsts ||
        ea.warmupInsts != eb.warmupInsts ||
        ea.sampledInsts != eb.sampledInsts ||
        ea.sampledCycles != eb.sampledCycles ||
        ea.estimatedCycles != eb.estimatedCycles ||
        ea.ipcMean != eb.ipcMean ||
        ea.ipcStddev != eb.ipcStddev ||
        ea.counterVariance != eb.counterVariance) {
        return false;
    }
    return a.output == b.output && a.outputOk == b.outputOk &&
           a.completed == b.completed;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    // jobs=1: wall-time fairness beats throughput here — parallel
    // workers would contend for cores and distort each job's MIPS.
    bench::Bench b(argc, argv,
                   "Host throughput: scan vs event issue scheduler",
                   "simulator performance baseline (no paper figure)",
                   400'000, 1);
    b.jsonDefault("BENCH_host_throughput.json");
    std::string baseline_path = b.cfg().getString("baseline", "");
    double tolerance = b.cfg().getDouble("tolerance", 30.0);

    // This bench is the one place the host phase profiler is always
    // armed: the breakdown table below and the report's "profile"
    // section are part of its committed output.
    harness::prof::Profiler::instance().enable(true);

    const std::vector<Scenario> scenarios = buildScenarios();
    harness::ExperimentPlan plan;
    for (const Scenario &sc : scenarios) {
        harness::RunSetup s;
        s.workload = sc.workload;
        s.input = sc.input;
        s.maxInsts = b.budget();
        for (uarch::SchedKind kind :
             {uarch::SchedKind::Scan, uarch::SchedKind::Event}) {
            s.machine = sc.machine;
            s.machine.sched = kind;
            plan.add(sc.name + "/" + uarch::schedKindName(kind), s);
        }
    }
    const auto res = b.run(plan);

    stats::Table t({"scenario", "scan insts/s", "event insts/s",
                    "event/scan", "scan cyc/s", "event cyc/s"});
    std::vector<double> ratios;
    for (size_t i = 0; i < scenarios.size(); ++i) {
        const harness::JobOutcome &scan = res[2 * i];
        const harness::JobOutcome &event = res[2 * i + 1];
        double scan_mips =
            harness::hostMips(scan.run(), scan.wallSeconds);
        double event_mips =
            harness::hostMips(event.run(), event.wallSeconds);
        double ratio =
            scan_mips > 0.0 ? event_mips / scan_mips : 0.0;
        ratios.push_back(ratio);

        char rbuf[32];
        std::snprintf(rbuf, sizeof(rbuf), "%.2fx", ratio);
        t.addRow();
        t.cell(scenarios[i].name);
        t.cell(harness::rate(scan_mips * 1e6, 2));
        t.cell(harness::rate(event_mips * 1e6, 2));
        t.cell(rbuf);
        t.cell(harness::rate(harness::hostCyclesPerSec(
            scan.run(), scan.wallSeconds), 2));
        t.cell(harness::rate(harness::hostCyclesPerSec(
            event.run(), event.wallSeconds), 2));
    }
    b.print(t);
    std::printf("\ntotal simulation wall time: %.2fs\n",
                b.runner().totalWallSeconds());

    int rc = 0;
    std::vector<harness::JobOutcome> extra;

    // Fast-forward rate: the checkpoint subsystem's functional-only
    // mode on the same mcf workload the stall_heavy pair simulated
    // in detail — the speed that interval sampling (sample=K,W,D)
    // buys between detailed windows. Measured twice: the per-step
    // reference loop against the batched interpreter the sampler
    // actually fast-forwards on, with the end states compared
    // bit-for-bit before either rate is believed.
    {
        const workloads::WorkloadSpec &spec =
            workloads::workload("mcf");
        isa::Program prog = spec.build("inp", spec.defaultScale);

        // Bit-identity first; no rate is believed before this holds.
        sim::Emulator step_emu(prog);
        sim::Emulator fast_emu(prog);
        std::uint64_t n_step = step_emu.run(b.budget());
        std::uint64_t n_fast = fast_emu.runFast(b.budget());
        if (n_step != n_fast ||
            !sameArchState(step_emu, fast_emu)) {
            std::fprintf(stderr,
                         "FAIL: runFast diverged from step() after "
                         "%llu/%llu insts\n",
                         (unsigned long long)n_fast,
                         (unsigned long long)n_step);
            rc = 1;
        }

        // Throughput: best of several repetitions, each timing a
        // batch of fresh runs. A busy host can slow a repetition
        // down but never speed one up, so the fastest repetition is
        // the honest machine rate — and one run at this budget is
        // over in a few ms, which is scheduler roulette, so each
        // timed region covers `batch` whole runs to push it into
        // the tens of milliseconds.
        auto best_mips = [&](auto &&go) {
            constexpr int batch = 8;
            double best = 0.0;
            for (int rep = 0; rep < 5; ++rep) {
                std::vector<sim::Emulator> emus;
                emus.reserve(batch);
                for (int i = 0; i < batch; ++i)
                    emus.emplace_back(prog);
                std::uint64_t n = 0;
                auto t0 = std::chrono::steady_clock::now();
                for (sim::Emulator &e : emus)
                    n += go(e);
                std::chrono::duration<double> dt =
                    std::chrono::steady_clock::now() - t0;
                if (dt.count() > 0.0 && n / dt.count() / 1e6 > best)
                    best = n / dt.count() / 1e6;
            }
            return best;
        };
        double step_mips = best_mips(
            [&](sim::Emulator &e) { return e.run(b.budget()); });
        double fast_mips = best_mips(
            [&](sim::Emulator &e) { return e.runFast(b.budget()); });
        double wall_step =
            step_mips > 0.0 ? n_step / (step_mips * 1e6) : 0.0;
        double wall_fast =
            fast_mips > 0.0 ? n_fast / (fast_mips * 1e6) : 0.0;
        double det_mips =
            harness::hostMips(res[0].run(), res[0].wallSeconds);
        std::printf("\nfast-forward (mcf, functional):\n");
        std::printf("  step():    %8.2f M insts/s\n", step_mips);
        std::printf("  runFast(): %8.2f M insts/s", fast_mips);
        if (step_mips > 0.0)
            std::printf("  (%.1fx step)", fast_mips / step_mips);
        if (det_mips > 0.0) {
            std::printf("  (%.1fx the detailed scan rate)",
                        fast_mips / det_mips);
        }
        std::printf("\n");

        auto ff_result = [&](const sim::Emulator &emu) {
            harness::RunResult r;
            r.core.committed = emu.instCount();
            r.completed = emu.halted();
            r.output = emu.output();
            return r;
        };
        // No RunSetup describes these loops, so synthesize stable
        // keys from what defines the measurement: the workload/input
        // and the instruction budget, tagged per loop kind.
        std::uint64_t ff_seed = hashCombine(hashInit(),
                                            std::string("mcf.inp"));
        ff_seed = hashCombine(ff_seed, b.budget());
        extra.push_back(pseudoOutcome(
            "ff_functional/step",
            hashCombine(ff_seed, std::string("step")),
            ff_result(step_emu), wall_step));
        extra.push_back(pseudoOutcome(
            "ff_functional/runfast",
            hashCombine(ff_seed, std::string("runfast")),
            ff_result(fast_emu), wall_fast));
    }

    // Interval-parallel sampled runs: one mcf sampled experiment per
    // pjobs value, through the exact engine sample=/pjobs= use.
    // Any thread count must produce byte-identical results — the
    // wall clock is the only thing allowed to move, and it only
    // moves when the host actually has spare hardware threads; the
    // header line records that so a flat column on a one-core box
    // reads as host limits, not an engine defect.
    {
        harness::RunSetup s;
        s.workload = "mcf";
        s.input = "inp";
        s.maxInsts = b.budget();
        s.machine = harness::baselineConfig(16);
        s.sample = ckpt::SamplePlan::parse("8,2000,8000");

        unsigned hw = std::thread::hardware_concurrency();
        std::printf("\nsampled interval scaling "
                    "(host hardware threads: %u)\n",
                    hw ? hw : 1);

        stats::Table st({"sampled mcf", "wall s", "speedup",
                         "identical"});
        double serial_wall = 0.0;
        double wall4 = 0.0;
        harness::RunResult ref;
        for (unsigned pj : {1u, 2u, 4u}) {
            s.pjobs = pj;
            auto t0 = std::chrono::steady_clock::now();
            harness::RunResult r = harness::runExperiment(s);
            std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - t0;

            bool same = true;
            if (pj == 1) {
                serial_wall = dt.count();
                ref = r;
            } else if (pj == 4) {
                wall4 = dt.count();
            }
            if (pj != 1) {
                same = sameSampledResult(ref, r);
                if (!same) {
                    std::fprintf(stderr,
                                 "FAIL: pjobs=%u diverged from the "
                                 "serial sampled run\n", pj);
                    rc = 1;
                }
            }

            char label[32], wall[32], sp[32];
            std::snprintf(label, sizeof(label), "pjobs=%u", pj);
            std::snprintf(wall, sizeof(wall), "%.3f", dt.count());
            std::snprintf(sp, sizeof(sp), "%.2fx",
                          dt.count() > 0.0
                              ? serial_wall / dt.count() : 0.0);
            st.addRow();
            st.cell(label);
            st.cell(wall);
            st.cell(sp);
            st.cell(same ? "yes" : "NO");

            char jname[48];
            std::snprintf(jname, sizeof(jname),
                          "sampled_mcf/pjobs%u", pj);
            // The canonical setup key, salted with pjobs so the
            // report rows stay distinguishable (the simulated result
            // is pjobs-independent by construction, the row is not).
            extra.push_back(pseudoOutcome(
                jname, hashCombine(s.key(), std::uint64_t(pj)),
                std::move(r), dt.count()));
        }
        std::printf("\n");
        b.print(st);

        // Parallelism must never cost throughput: with CoW restore
        // and the pipelined window engine, a worker pool on a loaded
        // or single-core host degrades to the serial schedule plus
        // queue noise, so pjobs=4 slower than 1.25x serial wall is
        // an engine defect, not host weather. Real speedup is only
        // demanded when the hardware can physically provide it.
        if (serial_wall > 0.0 && wall4 > serial_wall * 1.25) {
            std::fprintf(stderr,
                         "FAIL: sampled pjobs=4 anti-scaled: "
                         "%.3fs vs %.3fs serial\n",
                         wall4, serial_wall);
            rc = 1;
        }
        if (hw >= 4 && wall4 > 0.0 &&
            serial_wall / wall4 < 1.8) {
            std::fprintf(stderr,
                         "FAIL: sampled pjobs=4 speedup %.2fx < "
                         "1.8x on a %u-thread host\n",
                         serial_wall / wall4, hw);
            rc = 1;
        }
    }

    // Trace-overhead gate: the emit sites stay compiled into the
    // fetch/issue/commit loops even when nobody traces, so their
    // tracing-off cost must be noise. That cost (a null tracer test
    // per site) cannot be isolated in-process, but a muted tracer —
    // attached, mask=0, every event rejected by the emit check — runs
    // a strict superset of the off path's per-site work. Best-of-N
    // wall with the reps interleaved so host noise lands on both
    // arms: muted more than 2% over off fails the bench.
    if (trace::kTracingCompiled) {
        harness::RunSetup s;
        s.workload = scenarios[0].workload;
        s.input = scenarios[0].input;
        s.maxInsts = 4 * b.budget();
        s.machine = scenarios[0].machine;

        trace::TraceSpec muted;
        muted.path = "BENCH_trace_gate.tmp.bin";
        muted.mask = 0;

        // Measurement discipline, earned the hard way on this
        // container: wall time charges the muted arm for the
        // trace-file flush (pure I/O) and swings ±3% with scheduler
        // weather, so each leg is the profiler's detailed_window
        // phase *thread-CPU* delta — exactly the loop the emit
        // sites live in. Per-arm minima looked right (interference
        // only adds time) but flaked both ways: one anomalously
        // fast window (frequency burst, accounting quantum) pins an
        // arm's minimum below its intrinsic cost and the ratio
        // swings ±3%. The statistic here is robust on both sides —
        // 16 alternating legs per arm, drop each arm's single
        // fastest leg, average the next four (a trimmed lower
        // mean). When even those four trimmed legs disagree by more
        // than the 2%% bar, the host plainly cannot resolve 2%% and
        // the gate reports the measurement as inconclusive instead
        // of calling scheduler weather a regression.
        const auto dw = [] {
            return harness::prof::Profiler::instance().report()
                .phase[unsigned(harness::prof::Phase::DetailedWindow)]
                .cpuSeconds;
        };
        constexpr int kLegs = 16;       // per arm
        constexpr int kTrimLo = 1;      // drop the fastest leg
        constexpr int kKeep = 4;        // average the next four
        std::vector<double> cpu[2];     // off, muted
        for (int t = 0; t < 2 * kLegs; ++t) {
            int arm = t % 2;
            s.trace = arm ? muted : trace::TraceSpec();
            double t0 = dw();
            harness::runExperiment(s);
            cpu[arm].push_back(dw() - t0);
        }
        std::remove(muted.path.c_str());
        std::remove((muted.path + ".json").c_str());

        double stat[2] = {0.0, 0.0};
        double disp = 0.0;
        for (int arm = 0; arm < 2; ++arm) {
            std::sort(cpu[arm].begin(), cpu[arm].end());
            for (int i = kTrimLo; i < kTrimLo + kKeep; ++i)
                stat[arm] += cpu[arm][i];
            stat[arm] /= kKeep;
            if (cpu[arm][kTrimLo] > 0.0)
                disp = std::max(disp, cpu[arm][kTrimLo + kKeep - 1] /
                                          cpu[arm][kTrimLo] - 1.0);
        }
        bool resolvable = disp <= 0.02;
        double pct = stat[0] > 0.0
            ? (stat[1] / stat[0] - 1.0) * 100.0 : 0.0;
        std::printf("\ntrace emit-site overhead (%s, muted tracer "
                    "vs off, trimmed lower mean of %d legs/arm): "
                    "%+.1f%% (per-arm dispersion %.1f%%)\n",
                    scenarios[0].name.c_str(), kLegs, pct,
                    disp * 100.0);
        if (stat[0] > 0.0 && stat[1] > stat[0] * 1.02) {
            if (resolvable) {
                std::fprintf(stderr,
                             "FAIL: muted tracing costs %.1f%% > 2%% "
                             "— the emit fast path got too heavy\n",
                             pct);
                rc = 1;
            } else {
                std::fprintf(stderr,
                             "warning: trace overhead gate "
                             "inconclusive — trimmed legs disagree "
                             "by %.1f%% within one arm (host too "
                             "loaded to resolve 2%%); measured "
                             "%+.1f%% not gated\n",
                             disp * 100.0, pct);
            }
        }
    }

    // Served-vs-local dispatch overhead: the same cache-hit request
    // answered by an in-process svf-simd (Unix socket round trip,
    // JSON decode, memo lookup, result re-encode) against a local
    // Runner memo lookup. Both arms repeat a plan the engine has
    // already executed, so simulation cost is out of the picture and
    // the per-request wall time is pure dispatch. The daemon is
    // allowed < 5 ms/request on top of essentially-free local memo
    // service; more than that means the protocol path grew real work
    // (per-request allocation storms, lock convoys, Nagle stalls)
    // and thin-client sweeps would feel it at every job.
    {
        harness::RunSetup s;
        s.workload = "gzip";
        s.input = "log";
        s.maxInsts = 60'000;
        s.machine = harness::baselineConfig(8);
        harness::ExperimentPlan plan;
        plan.add("served_rt", s);

        serve::ServerOptions so;
        // cwd-relative keeps the path under the sockaddr_un limit no
        // matter where the build tree lives.
        so.unixPath = "BENCH_served.sock.tmp";
        so.service.engine.threads = 1;
        serve::Server server(so);
        std::string err;
        constexpr int kReqs = 50;
        double served_s = -1.0, local_s = -1.0;
        harness::RunResult served_r;
        if (!server.start(err)) {
            std::fprintf(stderr,
                         "FAIL: served-dispatch bench: %s\n",
                         err.c_str());
            rc = 1;
        } else {
            serve::Client cli;
            std::vector<harness::JobOutcome> out;
            bool ok = cli.connect(so.unixPath, err);
            // Warm-up executes on the daemon; every timed round trip
            // after it is a memo hit.
            ok = ok && cli.runPlan(plan, out, err);
            if (ok) {
                served_r = out[0].run();
                auto t0 = std::chrono::steady_clock::now();
                for (int i = 0; ok && i < kReqs; ++i) {
                    std::vector<harness::JobOutcome> hit;
                    ok = cli.runPlan(plan, hit, err);
                }
                std::chrono::duration<double> dt =
                    std::chrono::steady_clock::now() - t0;
                if (ok)
                    served_s = dt.count() / kReqs;
            }
            if (!ok) {
                std::fprintf(stderr,
                             "FAIL: served-dispatch bench: %s\n",
                             err.c_str());
                rc = 1;
            }
        }

        {
            harness::RunnerOptions ro;
            ro.jobs = 1;
            harness::Runner local(ro);
            local.run(plan);
            auto t0 = std::chrono::steady_clock::now();
            for (int i = 0; i < kReqs; ++i)
                local.run(plan);
            std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - t0;
            local_s = dt.count() / kReqs;
        }

        if (served_s >= 0.0) {
            std::printf("\ncache-hit dispatch (gzip.log, %d "
                        "round trips):\n", kReqs);
            std::printf("  local memo:   %8.3f ms/request\n",
                        local_s * 1e3);
            std::printf("  served (unix):%8.3f ms/request "
                        "(+%.3f ms daemon overhead)\n",
                        served_s * 1e3,
                        (served_s - local_s) * 1e3);
            if (served_s - local_s > 0.005) {
                std::fprintf(stderr,
                             "FAIL: daemon cache-hit overhead "
                             "%.3f ms/request > 5 ms\n",
                             (served_s - local_s) * 1e3);
                rc = 1;
            }
            // Baseline rows: host MIPS here reads "simulated insts
            // delivered per dispatch second", the sweep-side figure
            // of merit for cache-served jobs.
            std::uint64_t rt_seed =
                hashCombine(s.key(), std::uint64_t(kReqs));
            extra.push_back(pseudoOutcome(
                "dispatch/local",
                hashCombine(rt_seed, std::string("local")),
                served_r, local_s));
            extra.push_back(pseudoOutcome(
                "dispatch/served",
                hashCombine(rt_seed, std::string("served")),
                served_r, served_s));
        }
    }

    for (const harness::JobOutcome &o : extra)
        b.addOutcome(o);

    // Slurp the baseline *before* finish() writes the JSON sink:
    // the default sink path and the committed baseline are the same
    // file, and comparing the fresh run against itself would make
    // every rerun from the repo root vacuously pass.
    std::string text;
    if (!baseline_path.empty()) {
        std::ifstream in(baseline_path);
        if (!in) {
            std::fprintf(stderr,
                         "error: cannot read baseline '%s'\n",
                         baseline_path.c_str());
            return 1;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        text = ss.str();
    }

    // Where the host time went: phase breakdown from the always-armed
    // profiler — the detailed windows dominate, and the fast-forward /
    // snapshot / queue rows show what the sampled scaling runs paid.
    {
        harness::prof::Profiler::Report pr =
            harness::prof::Profiler::instance().report();
        stats::Table pt({"phase", "wall s", "cpu s", "count"});
        for (unsigned p = 0;
             p < unsigned(harness::prof::Phase::NumPhases); ++p) {
            const auto &ph = pr.phase[p];
            if (ph.count == 0)
                continue;
            char wall[32], cpu[32], count[32];
            std::snprintf(wall, sizeof(wall), "%.3f", ph.wallSeconds);
            std::snprintf(cpu, sizeof(cpu), "%.3f", ph.cpuSeconds);
            std::snprintf(count, sizeof(count), "%llu",
                          (unsigned long long)ph.count);
            pt.addRow();
            pt.cell(harness::prof::phaseName(harness::prof::Phase(p)));
            pt.cell(wall);
            pt.cell(cpu);
            pt.cell(count);
        }
        std::printf("\nhost phase profile (%.2fs elapsed, queue "
                    "high-water %llu):\n\n", pr.elapsedSeconds,
                    (unsigned long long)pr.queueDepthHighWater);
        b.print(pt);
        b.json().setProfile(
            harness::prof::Profiler::instance().reportJson());
        // Carry the baseline's breakdown forward: a regenerated
        // baseline document then holds both before and after
        // profiles, so a committed perf change documents what it
        // moved.
        if (!text.empty()) {
            std::string bp = extractProfileObject(text);
            if (!bp.empty())
                b.json().setProfileBaseline(bp);
        }
    }

    if (b.finish() != 0)
        rc = 1;

    if (!baseline_path.empty()) {
        std::vector<harness::JobOutcome> all = res;
        all.insert(all.end(), extra.begin(), extra.end());
        for (const harness::JobOutcome &o : all) {
            double base = extractHostMips(text, o.name);
            if (base <= 0.0)
                continue;       // job not in the committed baseline
            double cur = harness::hostMips(o.run(), o.wallSeconds);
            double delta = (cur / base - 1.0) * 100.0;
            std::printf("baseline %-24s %8.2f -> %8.2f MIPS "
                        "(%+.1f%%)\n",
                        o.name.c_str(), base, cur, delta);
            if (delta < -tolerance) {
                std::fprintf(stderr,
                             "FAIL: '%s' host MIPS regressed "
                             "%.1f%% (tolerance %.0f%%)\n",
                             o.name.c_str(), -delta, tolerance);
                rc = 1;
            }
        }

        // Profile diff: phase-by-phase against the same committed
        // baseline. Shares of elapsed time, not absolute seconds —
        // a uniformly faster or slower host shifts every wall
        // figure but leaves the breakdown alone, so a share that
        // grows is a phase that genuinely got more expensive
        // relative to the rest of the run. Flagging is a warning,
        // not a failure: the MIPS rows above are the gate, this
        // names the phase that moved. Tiny phases (< 2% of the
        // baseline run) are skipped — microsecond rows flap.
        double base_elapsed = extractProfileElapsed(text);
        if (base_elapsed > 0.0) {
            harness::prof::Profiler::Report pr =
                harness::prof::Profiler::instance().report();
            std::printf("\nprofile diff vs baseline "
                        "(share of elapsed):\n");
            for (unsigned p = 0;
                 p < unsigned(harness::prof::Phase::NumPhases);
                 ++p) {
                const char *name =
                    harness::prof::phaseName(harness::prof::Phase(p));
                double bw = extractPhaseWall(text, name);
                if (bw < 0.0)
                    continue;   // phase absent from the baseline
                double bshare = bw / base_elapsed;
                double cshare = pr.elapsedSeconds > 0.0
                    ? pr.phase[p].wallSeconds / pr.elapsedSeconds
                    : 0.0;
                bool flagged = bshare >= 0.02 &&
                               cshare > bshare * 1.10;
                std::printf("  %-18s %5.1f%% -> %5.1f%%%s\n", name,
                            bshare * 100.0, cshare * 100.0,
                            flagged ? "  ** regressed >10%" : "");
                if (flagged) {
                    std::fprintf(stderr,
                                 "WARN: phase '%s' grew from "
                                 "%.1f%% to %.1f%% of the run "
                                 "(>10%% relative)\n",
                                 name, bshare * 100.0,
                                 cshare * 100.0);
                }
            }
        }
    }
    return rc;
}
