/**
 * @file
 * Host-throughput trajectory: how fast the *simulator* runs, not the
 * simulated machine. Every job pair simulates the identical machine
 * twice — once per issue scheduler (SVF_SCHED=scan vs event; see
 * uarch/sched.hh) — and reports simulated MIPS and cycles/sec per
 * host wall second. The workload mix deliberately includes a
 * stall-heavy configuration (large window, tiny caches, 60-cycle
 * memory) where idle-cycle skipping pays most.
 *
 * The JSON report (default BENCH_host_throughput.json, svf-bench-1
 * schema) is the repo's performance baseline: commit it once, and
 * `baseline=FILE` reruns fail (exit 1) when any job's host MIPS
 * regresses more than 30% against the committed numbers — the tier2
 * ctest wires this up.
 *
 * Beyond the scan/event pairs, two more host-performance axes are
 * measured and fed into the same JSON/baseline machinery as
 * synthesized jobs:
 *   - ff_functional/step vs ff_functional/runfast: the per-step
 *     emulator against the batched interpreter (Emulator::runFast)
 *     that interval sampling fast-forwards on, verified bit-identical
 *     before the rates are reported;
 *   - sampled_mcf/pjobsN: one interval-sampled run at several
 *     pjobs= worker counts (harness/experiment.hh), verified
 *     byte-identical across thread counts.
 *
 * Extra config keys beyond the standard bench_util set:
 *     baseline=FILE   committed BENCH_host_throughput.json to
 *                     compare against (absent jobs are ignored)
 *     tolerance=PCT   allowed host-MIPS regression (default 30)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/hash.hh"
#include "bench_util.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/runner.hh"
#include "sim/emulator.hh"
#include "stats/table.hh"

using namespace svf;

namespace
{

/** One machine/workload combination measured under both schedulers. */
struct Scenario
{
    std::string name;
    std::string workload;
    std::string input;
    uarch::MachineConfig machine;
};

std::vector<Scenario>
buildScenarios()
{
    std::vector<Scenario> out;

    // Stall-heavy: the paper's 16-wide window over a cache starved
    // to a fraction of its Table 2 size, on pointer-chasing mcf.
    // Nearly every load misses to memory, so the window drains in
    // bursts with long idle gaps — the event scheduler's best case.
    {
        Scenario s;
        s.name = "stall_heavy";
        s.workload = "mcf";
        s.input = "inp";
        s.machine = harness::baselineConfig(16);
        s.machine.hier.dl1.size = 4 * 1024;
        s.machine.hier.dl1.assoc = 1;
        s.machine.hier.l2.size = 16 * 1024;
        s.machine.hier.l2.assoc = 1;
        out.push_back(std::move(s));
    }

    // Table 2 machine on a compute-dense workload: the busy-cycle
    // case, where skipping rarely triggers and the ready list must
    // not cost more than the scan saved.
    {
        Scenario s;
        s.name = "busy";
        s.workload = "gzip";
        s.input = "program";
        s.machine = harness::baselineConfig(16);
        out.push_back(std::move(s));
    }

    // SVF machine with squash-prone morphing: replay storms rebuild
    // the scheduler state wholesale, the worst case for the event
    // mode's bookkeeping.
    {
        Scenario s;
        s.name = "svf_squash";
        s.workload = "parser";
        s.input = "ref";
        s.machine = harness::baselineConfig(16);
        harness::applySvf(s.machine, 1024, 2);
        out.push_back(std::move(s));
    }

    return out;
}

/**
 * Pull derived.host_mips for @p job out of a committed svf-bench-1
 * document with a plain string scan — records are flat and the
 * emitter's field order is fixed, so a JSON parser would be dead
 * weight here.
 */
double
extractHostMips(const std::string &text, const std::string &job)
{
    std::string anchor = "\"name\": \"" + job + "\"";
    size_t at = text.find(anchor);
    if (at == std::string::npos)
        return -1.0;
    size_t end = text.find('\n', at);
    std::string field = "\"host_mips\": ";
    size_t f = text.find(field, at);
    if (f == std::string::npos ||
        (end != std::string::npos && f > end)) {
        return -1.0;
    }
    return std::strtod(text.c_str() + f + field.size(), nullptr);
}

/**
 * Wrap a hand-timed measurement as a Runner-style outcome. @p key
 * must be the setup's canonical key (or a stable synthesized one for
 * measurements without a RunSetup) — a zero key in the JSON would
 * make rows indistinguishable from each other across reports.
 */
harness::JobOutcome
pseudoOutcome(const std::string &name, std::uint64_t key,
              harness::RunResult r, double wall_seconds)
{
    harness::JobOutcome o;
    o.name = name;
    o.key = key;
    o.wallSeconds = wall_seconds;
    o.value = std::move(r);
    return o;
}

/** Did two runs of the same emulator program end in the same state? */
bool
sameArchState(const sim::Emulator &a, const sim::Emulator &b)
{
    sim::EmuArchState sa = a.archState();
    sim::EmuArchState sb = b.archState();
    return sa.regs == sb.regs && sa.pc == sb.pc &&
           sa.lowSp == sb.lowSp && sa.icount == sb.icount &&
           sa.halted == sb.halted && sa.output == sb.output;
}

/** Every observable field of two sampled results, byte-compared. */
bool
sameSampledResult(const harness::RunResult &a,
                  const harness::RunResult &b)
{
    for (const ckpt::CoreCounter &c : ckpt::coreCounters()) {
        if (a.core.*(c.field) != b.core.*(c.field))
            return false;
    }
    const ckpt::SampleEstimate &ea = a.sampled, &eb = b.sampled;
    if (ea.intervals != eb.intervals ||
        ea.totalInsts != eb.totalInsts ||
        ea.ffInsts != eb.ffInsts ||
        ea.warmupInsts != eb.warmupInsts ||
        ea.sampledInsts != eb.sampledInsts ||
        ea.sampledCycles != eb.sampledCycles ||
        ea.estimatedCycles != eb.estimatedCycles ||
        ea.ipcMean != eb.ipcMean ||
        ea.ipcStddev != eb.ipcStddev ||
        ea.counterVariance != eb.counterVariance) {
        return false;
    }
    return a.svfQuadsIn == b.svfQuadsIn &&
           a.svfQuadsOut == b.svfQuadsOut &&
           a.svfFastLoads == b.svfFastLoads &&
           a.svfFastStores == b.svfFastStores &&
           a.svfReroutedLoads == b.svfReroutedLoads &&
           a.svfReroutedStores == b.svfReroutedStores &&
           a.svfWindowMisses == b.svfWindowMisses &&
           a.svfDemandFills == b.svfDemandFills &&
           a.svfDisableEpisodes == b.svfDisableEpisodes &&
           a.svfRefsWhileDisabled == b.svfRefsWhileDisabled &&
           a.scQuadsIn == b.scQuadsIn &&
           a.scQuadsOut == b.scQuadsOut &&
           a.scHits == b.scHits && a.scMisses == b.scMisses &&
           a.dl1Hits == b.dl1Hits && a.dl1Misses == b.dl1Misses &&
           a.l2Hits == b.l2Hits && a.l2Misses == b.l2Misses &&
           a.output == b.output && a.outputOk == b.outputOk &&
           a.completed == b.completed;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    // jobs=1: wall-time fairness beats throughput here — parallel
    // workers would contend for cores and distort each job's MIPS.
    bench::Bench b(argc, argv,
                   "Host throughput: scan vs event issue scheduler",
                   "simulator performance baseline (no paper figure)",
                   400'000, 1);
    b.jsonDefault("BENCH_host_throughput.json");
    std::string baseline_path = b.cfg().getString("baseline", "");
    double tolerance = b.cfg().getDouble("tolerance", 30.0);

    const std::vector<Scenario> scenarios = buildScenarios();
    harness::ExperimentPlan plan;
    for (const Scenario &sc : scenarios) {
        harness::RunSetup s;
        s.workload = sc.workload;
        s.input = sc.input;
        s.maxInsts = b.budget();
        for (uarch::SchedKind kind :
             {uarch::SchedKind::Scan, uarch::SchedKind::Event}) {
            s.machine = sc.machine;
            s.machine.sched = kind;
            plan.add(sc.name + "/" + uarch::schedKindName(kind), s);
        }
    }
    const auto res = b.run(plan);

    stats::Table t({"scenario", "scan insts/s", "event insts/s",
                    "event/scan", "scan cyc/s", "event cyc/s"});
    std::vector<double> ratios;
    for (size_t i = 0; i < scenarios.size(); ++i) {
        const harness::JobOutcome &scan = res[2 * i];
        const harness::JobOutcome &event = res[2 * i + 1];
        double scan_mips =
            harness::hostMips(scan.run(), scan.wallSeconds);
        double event_mips =
            harness::hostMips(event.run(), event.wallSeconds);
        double ratio =
            scan_mips > 0.0 ? event_mips / scan_mips : 0.0;
        ratios.push_back(ratio);

        char rbuf[32];
        std::snprintf(rbuf, sizeof(rbuf), "%.2fx", ratio);
        t.addRow();
        t.cell(scenarios[i].name);
        t.cell(harness::rate(scan_mips * 1e6, 2));
        t.cell(harness::rate(event_mips * 1e6, 2));
        t.cell(rbuf);
        t.cell(harness::rate(harness::hostCyclesPerSec(
            scan.run(), scan.wallSeconds), 2));
        t.cell(harness::rate(harness::hostCyclesPerSec(
            event.run(), event.wallSeconds), 2));
    }
    b.print(t);
    std::printf("\ntotal simulation wall time: %.2fs\n",
                b.runner().totalWallSeconds());

    int rc = 0;
    std::vector<harness::JobOutcome> extra;

    // Fast-forward rate: the checkpoint subsystem's functional-only
    // mode on the same mcf workload the stall_heavy pair simulated
    // in detail — the speed that interval sampling (sample=K,W,D)
    // buys between detailed windows. Measured twice: the per-step
    // reference loop against the batched interpreter the sampler
    // actually fast-forwards on, with the end states compared
    // bit-for-bit before either rate is believed.
    {
        const workloads::WorkloadSpec &spec =
            workloads::workload("mcf");
        isa::Program prog = spec.build("inp", spec.defaultScale);

        // Bit-identity first; no rate is believed before this holds.
        sim::Emulator step_emu(prog);
        sim::Emulator fast_emu(prog);
        std::uint64_t n_step = step_emu.run(b.budget());
        std::uint64_t n_fast = fast_emu.runFast(b.budget());
        if (n_step != n_fast ||
            !sameArchState(step_emu, fast_emu)) {
            std::fprintf(stderr,
                         "FAIL: runFast diverged from step() after "
                         "%llu/%llu insts\n",
                         (unsigned long long)n_fast,
                         (unsigned long long)n_step);
            rc = 1;
        }

        // Throughput: best of several repetitions, each timing a
        // batch of fresh runs. A busy host can slow a repetition
        // down but never speed one up, so the fastest repetition is
        // the honest machine rate — and one run at this budget is
        // over in a few ms, which is scheduler roulette, so each
        // timed region covers `batch` whole runs to push it into
        // the tens of milliseconds.
        auto best_mips = [&](auto &&go) {
            constexpr int batch = 8;
            double best = 0.0;
            for (int rep = 0; rep < 5; ++rep) {
                std::vector<sim::Emulator> emus;
                emus.reserve(batch);
                for (int i = 0; i < batch; ++i)
                    emus.emplace_back(prog);
                std::uint64_t n = 0;
                auto t0 = std::chrono::steady_clock::now();
                for (sim::Emulator &e : emus)
                    n += go(e);
                std::chrono::duration<double> dt =
                    std::chrono::steady_clock::now() - t0;
                if (dt.count() > 0.0 && n / dt.count() / 1e6 > best)
                    best = n / dt.count() / 1e6;
            }
            return best;
        };
        double step_mips = best_mips(
            [&](sim::Emulator &e) { return e.run(b.budget()); });
        double fast_mips = best_mips(
            [&](sim::Emulator &e) { return e.runFast(b.budget()); });
        double wall_step =
            step_mips > 0.0 ? n_step / (step_mips * 1e6) : 0.0;
        double wall_fast =
            fast_mips > 0.0 ? n_fast / (fast_mips * 1e6) : 0.0;
        double det_mips =
            harness::hostMips(res[0].run(), res[0].wallSeconds);
        std::printf("\nfast-forward (mcf, functional):\n");
        std::printf("  step():    %8.2f M insts/s\n", step_mips);
        std::printf("  runFast(): %8.2f M insts/s", fast_mips);
        if (step_mips > 0.0)
            std::printf("  (%.1fx step)", fast_mips / step_mips);
        if (det_mips > 0.0) {
            std::printf("  (%.1fx the detailed scan rate)",
                        fast_mips / det_mips);
        }
        std::printf("\n");

        auto ff_result = [&](const sim::Emulator &emu) {
            harness::RunResult r;
            r.core.committed = emu.instCount();
            r.completed = emu.halted();
            r.output = emu.output();
            return r;
        };
        // No RunSetup describes these loops, so synthesize stable
        // keys from what defines the measurement: the workload/input
        // and the instruction budget, tagged per loop kind.
        std::uint64_t ff_seed = hashCombine(hashInit(),
                                            std::string("mcf.inp"));
        ff_seed = hashCombine(ff_seed, b.budget());
        extra.push_back(pseudoOutcome(
            "ff_functional/step",
            hashCombine(ff_seed, std::string("step")),
            ff_result(step_emu), wall_step));
        extra.push_back(pseudoOutcome(
            "ff_functional/runfast",
            hashCombine(ff_seed, std::string("runfast")),
            ff_result(fast_emu), wall_fast));
    }

    // Interval-parallel sampled runs: one mcf sampled experiment per
    // pjobs value, through the exact engine sample=/pjobs= use.
    // Any thread count must produce byte-identical results — the
    // wall clock is the only thing allowed to move, and it only
    // moves when the host actually has spare hardware threads; the
    // header line records that so a flat column on a one-core box
    // reads as host limits, not an engine defect.
    {
        harness::RunSetup s;
        s.workload = "mcf";
        s.input = "inp";
        s.maxInsts = b.budget();
        s.machine = harness::baselineConfig(16);
        s.sample = ckpt::SamplePlan::parse("8,2000,8000");

        unsigned hw = std::thread::hardware_concurrency();
        std::printf("\nsampled interval scaling "
                    "(host hardware threads: %u)\n",
                    hw ? hw : 1);

        stats::Table st({"sampled mcf", "wall s", "speedup",
                         "identical"});
        double serial_wall = 0.0;
        double wall4 = 0.0;
        harness::RunResult ref;
        for (unsigned pj : {1u, 2u, 4u}) {
            s.pjobs = pj;
            auto t0 = std::chrono::steady_clock::now();
            harness::RunResult r = harness::runExperiment(s);
            std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - t0;

            bool same = true;
            if (pj == 1) {
                serial_wall = dt.count();
                ref = r;
            } else if (pj == 4) {
                wall4 = dt.count();
            }
            if (pj != 1) {
                same = sameSampledResult(ref, r);
                if (!same) {
                    std::fprintf(stderr,
                                 "FAIL: pjobs=%u diverged from the "
                                 "serial sampled run\n", pj);
                    rc = 1;
                }
            }

            char label[32], wall[32], sp[32];
            std::snprintf(label, sizeof(label), "pjobs=%u", pj);
            std::snprintf(wall, sizeof(wall), "%.3f", dt.count());
            std::snprintf(sp, sizeof(sp), "%.2fx",
                          dt.count() > 0.0
                              ? serial_wall / dt.count() : 0.0);
            st.addRow();
            st.cell(label);
            st.cell(wall);
            st.cell(sp);
            st.cell(same ? "yes" : "NO");

            char jname[48];
            std::snprintf(jname, sizeof(jname),
                          "sampled_mcf/pjobs%u", pj);
            // The canonical setup key, salted with pjobs so the
            // report rows stay distinguishable (the simulated result
            // is pjobs-independent by construction, the row is not).
            extra.push_back(pseudoOutcome(
                jname, hashCombine(s.key(), std::uint64_t(pj)),
                std::move(r), dt.count()));
        }
        std::printf("\n");
        b.print(st);

        // Parallelism must never cost throughput: with CoW restore
        // and the pipelined window engine, a worker pool on a loaded
        // or single-core host degrades to the serial schedule plus
        // queue noise, so pjobs=4 slower than 1.25x serial wall is
        // an engine defect, not host weather. Real speedup is only
        // demanded when the hardware can physically provide it.
        if (serial_wall > 0.0 && wall4 > serial_wall * 1.25) {
            std::fprintf(stderr,
                         "FAIL: sampled pjobs=4 anti-scaled: "
                         "%.3fs vs %.3fs serial\n",
                         wall4, serial_wall);
            rc = 1;
        }
        if (hw >= 4 && wall4 > 0.0 &&
            serial_wall / wall4 < 1.8) {
            std::fprintf(stderr,
                         "FAIL: sampled pjobs=4 speedup %.2fx < "
                         "1.8x on a %u-thread host\n",
                         serial_wall / wall4, hw);
            rc = 1;
        }
    }

    for (const harness::JobOutcome &o : extra)
        b.addOutcome(o);

    // Slurp the baseline *before* finish() writes the JSON sink:
    // the default sink path and the committed baseline are the same
    // file, and comparing the fresh run against itself would make
    // every rerun from the repo root vacuously pass.
    std::string text;
    if (!baseline_path.empty()) {
        std::ifstream in(baseline_path);
        if (!in) {
            std::fprintf(stderr,
                         "error: cannot read baseline '%s'\n",
                         baseline_path.c_str());
            return 1;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        text = ss.str();
    }

    if (b.finish() != 0)
        rc = 1;

    if (!baseline_path.empty()) {
        std::vector<harness::JobOutcome> all = res;
        all.insert(all.end(), extra.begin(), extra.end());
        for (const harness::JobOutcome &o : all) {
            double base = extractHostMips(text, o.name);
            if (base <= 0.0)
                continue;       // job not in the committed baseline
            double cur = harness::hostMips(o.run(), o.wallSeconds);
            double delta = (cur / base - 1.0) * 100.0;
            std::printf("baseline %-24s %8.2f -> %8.2f MIPS "
                        "(%+.1f%%)\n",
                        o.name.c_str(), base, cur, delta);
            if (delta < -tolerance) {
                std::fprintf(stderr,
                             "FAIL: '%s' host MIPS regressed "
                             "%.1f%% (tolerance %.0f%%)\n",
                             o.name.c_str(), -delta, tolerance);
                rc = 1;
            }
        }
    }
    return rc;
}
