/**
 * @file
 * Figure 6: progressive performance analysis on the 16-wide machine.
 * Starting from the Table 2 baseline, each configuration relaxes one
 * constraint: doubled L1 (128KB), removed stack address computation
 * (no_addr_cal_op), then a real 8KB SVF with 1, 2 and 16 ports.
 * Speedups are relative to the common baseline, as in the paper.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace svf;

int
main(int argc, char **argv)
{
    bench::Bench b(argc, argv,
                   "Figure 6: Progressive Performance Analysis "
                   "(16-wide)", "Figure 6");

    using Mutator = void (*)(uarch::MachineConfig &);
    struct Column
    {
        const char *name;
        Mutator mutate;
    };
    const Column columns[] = {
        {"128KB_L1", [](uarch::MachineConfig &m) {
             m.hier.dl1.size = 128 * 1024;
         }},
        {"no_addr_cal_op", [](uarch::MachineConfig &m) {
             m.noAddrCalcOp = true;
         }},
        {"svf_1p", [](uarch::MachineConfig &m) {
             harness::applySvf(m, 1024, 1);
         }},
        {"svf_2p", [](uarch::MachineConfig &m) {
             harness::applySvf(m, 1024, 2);
         }},
        {"svf_16p", [](uarch::MachineConfig &m) {
             harness::applySvf(m, 1024, 16);
         }},
    };

    // Per input: job 0 is the shared baseline, 1..5 the columns.
    const auto inputs = bench::allInputs(true);
    harness::ExperimentPlan plan;
    for (const auto &bi : inputs) {
        harness::RunSetup s;
        s.workload = bi.workload;
        s.input = bi.input;
        s.maxInsts = b.budget();
        s.machine = harness::baselineConfig(16, 2);
        plan.add(bi.display() + "/base", s);
        for (const Column &col : columns) {
            harness::RunSetup s2 = s;
            col.mutate(s2.machine);
            plan.add(bi.display() + "/" + col.name, s2);
        }
    }
    const auto res = b.run(plan);

    stats::Table t({"benchmark", "128KB_L1", "no_addr_cal_op",
                    "svf_1p", "svf_2p", "svf_16p"});
    std::vector<std::vector<double>> cols(5);

    for (size_t i = 0; i < inputs.size(); ++i) {
        const harness::JobOutcome *jobs = &res[i * 6];
        t.addRow();
        t.cell(inputs[i].display());
        for (size_t c = 0; c < 5; ++c) {
            double sp = harness::speedupPct(jobs[0].run(),
                                            jobs[1 + c].run());
            cols[c].push_back(sp);
            t.cell(harness::pct(sp));
        }
    }

    bench::addMeanRow(t, cols);
    b.print(t);
    std::printf("\npaper: enlarging the L1 gains almost nothing; "
                "no_addr_cal_op about 3%% (out-of-order execution "
                "hides address calculation); the SVF provides the "
                "bulk (28%% at 16 ports) and 2 SVF ports capture "
                "nearly all of it except for eon and gcc.\n");
    return b.finish();
}
