/**
 * @file
 * Table 4: writeback traffic on context switches (bytes per switch,
 * averaged over switches every 400,000 instructions) for the stack
 * cache versus the stack value file.
 *
 * The SVF's per-word dirty bits and its invalidation of deallocated
 * frames leave far fewer bytes to flush than the stack cache's
 * whole-line writebacks.
 *
 * The switch injection rides the harness's slice= drive mode
 * (harness/traffic.hh): slice=Q round-robins the workload's single
 * stream in Q-instruction slices and charges a flush whenever a
 * slice consumes its full period — bit-identical to the retired
 * modulo injector. period= is accepted as a legacy spelling.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "harness/reporting.hh"
#include "harness/runner.hh"
#include "harness/traffic.hh"
#include "stats/table.hh"

using namespace svf;

int
main(int argc, char **argv)
{
    bench::Bench b(argc, argv,
                   "Table 4: Memory Traffic on Context Switches "
                   "(bytes per switch, 8KB structures)", "Table 4",
                   3'000'000);
    std::uint64_t period =
        b.cfg().getUint("slice", b.cfg().getUint("period", 400'000));

    const auto inputs = bench::allInputs(true);
    harness::ExperimentPlan plan;
    for (const auto &bi : inputs) {
        harness::TrafficSetup s;
        s.workload = bi.workload;
        s.input = bi.input;
        s.maxInsts = b.budget();
        s.capacityBytes = 8192;
        s.slicePeriod = period;
        plan.add(bi.display(), s);
    }
    const auto res = b.run(plan);

    stats::Table t({"benchmark", "stack cache", "stack value file",
                    "ratio", "switches"});

    for (size_t i = 0; i < inputs.size(); ++i) {
        const harness::TrafficResult &r = res[i].traffic();

        double switches = r.ctxSwitches ? double(r.ctxSwitches) : 1.0;
        double sc_bytes = double(r.scCtxBytes) / switches;
        double svf_bytes = double(r.svfCtxBytes) / switches;

        t.addRow();
        t.cell(inputs[i].display());
        t.cell(sc_bytes, 0);
        t.cell(svf_bytes, 0);
        t.cell(svf_bytes > 0.0 ? sc_bytes / svf_bytes : 0.0, 1);
        t.cell(r.ctxSwitches);
    }

    b.print(t);

    std::printf("\npaper: SVF writeback traffic per switch is 3 to "
                "20 times smaller than the stack cache's (e.g. eon: "
                "~7000 bytes vs ~700).\n");
    return b.finish();
}
