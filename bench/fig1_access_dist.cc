/**
 * @file
 * Figure 1: run-time memory access distribution for the SPECint2000
 * stand-ins — references broken down by region (stack/global/heap)
 * and, within the stack, by access method ($sp/$fp/$gpr).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "harness/reporting.hh"
#include "stats/table.hh"
#include "workloads/calibration.hh"

using namespace svf;

int
main(int argc, char **argv)
{
    Config cfg = Config::fromArgs(argc, argv);
    std::uint64_t budget = bench::instBudget(cfg, 1'000'000);
    bool csv = cfg.getBool("csv", false);

    harness::banner("Figure 1: Run-time Memory Access Distribution",
                    "Figure 1");

    stats::Table t({"benchmark", "mem/insts", "stack%", "global%",
                    "heap%", "stack:$sp%", "stack:$fp%",
                    "stack:$gpr%"});

    double sum_stack = 0.0;
    double sum_sp_of_stack = 0.0;
    double sum_mem = 0.0;
    int n = 0;
    for (const auto &bi : bench::allInputs()) {
        const auto &w = workloads::workload(bi.workload);
        workloads::StackProfile p = workloads::profileProgram(
            w.build(bi.input, w.defaultScale), budget);

        auto pct_of = [&](std::uint64_t x, std::uint64_t total) {
            return total ? 100.0 * double(x) / double(total) : 0.0;
        };
        t.addRow();
        t.cell(bi.display());
        t.cell(pct_of(p.memRefs, p.insts) / 100.0, 3);
        t.cell(pct_of(p.stackRefs, p.memRefs), 1);
        t.cell(pct_of(p.globalRefs, p.memRefs), 1);
        t.cell(pct_of(p.heapRefs, p.memRefs), 1);
        t.cell(pct_of(p.stackSp, p.stackRefs), 1);
        t.cell(pct_of(p.stackFp, p.stackRefs), 1);
        t.cell(pct_of(p.stackGpr, p.stackRefs), 1);

        sum_stack += p.stackFraction();
        sum_mem += p.memRefs ? double(p.memRefs) / double(p.insts)
                             : 0.0;
        sum_sp_of_stack += p.spFraction();
        ++n;
    }

    if (csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);

    std::printf("\naverages: %.0f%% of instructions access memory; "
                "stack refs are %.0f%% of memory accesses; $sp "
                "addressing covers %.0f%% of stack accesses\n",
                100.0 * sum_mem / n, 100.0 * sum_stack / n,
                100.0 * sum_sp_of_stack / n);
    std::printf("paper:     42%% / 56%% / 82%% (with eon the $gpr "
                "outlier)\n");
    bench::finishConfig(cfg);
    return 0;
}
