/**
 * @file
 * Figure 1: run-time memory access distribution for the SPECint2000
 * stand-ins — references broken down by region (stack/global/heap)
 * and, within the stack, by access method ($sp/$fp/$gpr).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "harness/reporting.hh"
#include "harness/runner.hh"
#include "stats/table.hh"
#include "workloads/calibration.hh"

using namespace svf;

int
main(int argc, char **argv)
{
    bench::Bench b(argc, argv,
                   "Figure 1: Run-time Memory Access Distribution",
                   "Figure 1", 1'000'000);

    const auto inputs = bench::allInputs();
    harness::ExperimentPlan plan;
    for (const auto &bi : inputs) {
        harness::ProfileSetup s;
        s.workload = bi.workload;
        s.input = bi.input;
        s.maxInsts = b.budget();
        plan.add(bi.display(), s);
    }
    const auto res = b.run(plan);

    stats::Table t({"benchmark", "mem/insts", "stack%", "global%",
                    "heap%", "stack:$sp%", "stack:$fp%",
                    "stack:$gpr%"});

    double sum_stack = 0.0;
    double sum_sp_of_stack = 0.0;
    double sum_mem = 0.0;
    int n = 0;
    for (size_t i = 0; i < inputs.size(); ++i) {
        const workloads::StackProfile &p = res[i].profile();

        auto pct_of = [&](std::uint64_t x, std::uint64_t total) {
            return total ? 100.0 * double(x) / double(total) : 0.0;
        };
        t.addRow();
        t.cell(inputs[i].display());
        t.cell(pct_of(p.memRefs, p.insts) / 100.0, 3);
        t.cell(pct_of(p.stackRefs, p.memRefs), 1);
        t.cell(pct_of(p.globalRefs, p.memRefs), 1);
        t.cell(pct_of(p.heapRefs, p.memRefs), 1);
        t.cell(pct_of(p.stackSp, p.stackRefs), 1);
        t.cell(pct_of(p.stackFp, p.stackRefs), 1);
        t.cell(pct_of(p.stackGpr, p.stackRefs), 1);

        sum_stack += p.stackFraction();
        sum_mem += p.memRefs ? double(p.memRefs) / double(p.insts)
                             : 0.0;
        sum_sp_of_stack += p.spFraction();
        ++n;
    }

    b.print(t);

    std::printf("\naverages: %.0f%% of instructions access memory; "
                "stack refs are %.0f%% of memory accesses; $sp "
                "addressing covers %.0f%% of stack accesses\n",
                100.0 * sum_mem / n, 100.0 * sum_stack / n,
                100.0 * sum_sp_of_stack / n);
    std::printf("paper:     42%% / 56%% / 82%% (with eon the $gpr "
                "outlier)\n");
    return b.finish();
}
