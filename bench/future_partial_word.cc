/**
 * @file
 * The paper's future work (Section 7): "extend this analysis to the
 * x86 architecture with its increased reliance on the stack region
 * and its use of partial word references."
 *
 * The SVF's status bits are per 64-bit word, so a partial-word store
 * to an invalid word cannot simply validate it — the rest of the
 * word may be live, forcing a read-modify-write fill (Section 3.3:
 * "If the granularity is larger than this, there will be more
 * memory traffic"). This bench quantifies that effect with a
 * byte-oriented stack workload: an x86-flavoured variant that builds
 * strings byte-by-byte in freshly allocated frames.
 */

#include <cstdio>
#include <iostream>
#include <memory>

#include "bench_util.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/runner.hh"
#include "isa/builder.hh"
#include "stats/table.hh"

using namespace svf;
using namespace svf::isa;

namespace
{

/**
 * A token-formatting kernel: each call allocates a frame and fills a
 * 64-byte buffer with either byte stores (x86-style partial words)
 * or quadword stores (Alpha-style), then checksums it.
 */
Program
makeFormatter(int iterations, bool byte_stores)
{
    ProgramBuilder pb(byte_stores ? "fmt.bytes" : "fmt.quads");
    Label l_main = pb.newLabel();
    Label l_fmt = pb.newLabel();

    pb.bind(l_main);
    FunctionBuilder mf(pb, FrameSpec{16, true, false, false, {}});
    mf.prologue();
    pb.li(RegS0, iterations);
    pb.li(RegS1, 0);
    Label loop = pb.here();
    pb.mov(RegS0, RegA0);
    pb.call(l_fmt);
    pb.addq(RegS1, RegV0, RegS1);
    pb.subqi(RegS0, 1, RegS0);
    pb.bne(RegS0, loop);
    pb.mov(RegS1, RegA0);
    pb.putint();
    pb.halt();

    pb.bind(l_fmt);
    FunctionBuilder ff(pb, FrameSpec{80, true, false, false, {}});
    ff.prologue();
    if (byte_stores) {
        // 64 single-byte stores into the fresh frame: every eighth
        // one touches an invalid word partially.
        for (int i = 0; i < 64; ++i) {
            pb.andi(RegA0, static_cast<std::uint8_t>(i * 3 + 1),
                    RegT0);
            pb.stb(RegT0, i, RegSP);
        }
    } else {
        // 8 quadword stores covering the same 64 bytes.
        for (int i = 0; i < 8; ++i) {
            pb.andi(RegA0, static_cast<std::uint8_t>(i * 3 + 1),
                    RegT0);
            pb.stq(RegT0, i * 8, RegSP);
        }
    }
    // Read the buffer back as quadwords.
    pb.li(RegV0, 0);
    for (int i = 0; i < 8; ++i) {
        pb.ldq(RegT1, i * 8, RegSP);
        pb.xor_(RegV0, RegT1, RegV0);
    }
    ff.epilogueRet();

    return pb.finish(l_main);
}

/** A cycle-model job over an explicit (non-registry) program. */
harness::RunSetup
makeSetup(int iterations, bool byte_stores)
{
    harness::RunSetup s;
    s.program = std::make_shared<isa::Program>(
        makeFormatter(iterations, byte_stores));
    s.maxInsts = 400'000;
    s.machine = harness::baselineConfig(16, 2);
    harness::applySvf(s.machine, 1024, 2);
    return s;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Bench b(argc, argv,
                   "Future work: partial-word (x86-style) stack "
                   "references vs the SVF's 64-bit status bits",
                   "Section 7 (future work)");
    int iters = static_cast<int>(b.cfg().getUint("iters", 1500));

    harness::ExperimentPlan plan;
    plan.add("fmt.quads", makeSetup(iters, false));
    plan.add("fmt.bytes", makeSetup(iters, true));
    const auto res = b.run(plan);

    const harness::RunResult &quads = res[0].run();
    const harness::RunResult &bytes = res[1].run();

    stats::Table t({"store style", "cycles", "svf qw-in",
                    "RMW demand fills"});
    t.addRow();
    t.cell(std::string("64-bit (Alpha)"));
    t.cell(quads.core.cycles);
    t.cell(quads.svfQuadsIn);
    t.cell(quads.svfDemandFills);
    t.addRow();
    t.cell(std::string("byte (x86-style)"));
    t.cell(bytes.core.cycles);
    t.cell(bytes.svfQuadsIn);
    t.cell(bytes.svfDemandFills);
    t.print(std::cout);

    std::printf("\nQuadword first-touch stores validate SVF words "
                "for free; byte stores to fresh frames must read-"
                "modify-write every word once (%llu fills here), the "
                "exact cost the paper flags for an x86 SVF.\n",
                (unsigned long long)bytes.svfDemandFills);
    return b.finish();
}
