/**
 * @file
 * The paper's future work (Section 7): "extend this analysis to the
 * x86 architecture with its increased reliance on the stack region
 * and its use of partial word references."
 *
 * The SVF's status bits are per 64-bit word, so a partial-word store
 * to an invalid word cannot simply validate it — the rest of the
 * word may be live, forcing a read-modify-write fill (Section 3.3:
 * "If the granularity is larger than this, there will be more
 * memory traffic"). This bench quantifies that effect with a
 * byte-oriented stack workload: an x86-flavoured variant that builds
 * strings byte-by-byte in freshly allocated frames.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "isa/builder.hh"
#include "sim/emulator.hh"
#include "stats/table.hh"
#include "uarch/ooo_core.hh"

using namespace svf;
using namespace svf::isa;

namespace
{

/**
 * A token-formatting kernel: each call allocates a frame and fills a
 * 64-byte buffer with either byte stores (x86-style partial words)
 * or quadword stores (Alpha-style), then checksums it.
 */
Program
makeFormatter(int iterations, bool byte_stores)
{
    ProgramBuilder pb(byte_stores ? "fmt.bytes" : "fmt.quads");
    Label l_main = pb.newLabel();
    Label l_fmt = pb.newLabel();

    pb.bind(l_main);
    FunctionBuilder mf(pb, FrameSpec{16, true, false, false, {}});
    mf.prologue();
    pb.li(RegS0, iterations);
    pb.li(RegS1, 0);
    Label loop = pb.here();
    pb.mov(RegS0, RegA0);
    pb.call(l_fmt);
    pb.addq(RegS1, RegV0, RegS1);
    pb.subqi(RegS0, 1, RegS0);
    pb.bne(RegS0, loop);
    pb.mov(RegS1, RegA0);
    pb.putint();
    pb.halt();

    pb.bind(l_fmt);
    FunctionBuilder ff(pb, FrameSpec{80, true, false, false, {}});
    ff.prologue();
    if (byte_stores) {
        // 64 single-byte stores into the fresh frame: every eighth
        // one touches an invalid word partially.
        for (int i = 0; i < 64; ++i) {
            pb.andi(RegA0, static_cast<std::uint8_t>(i * 3 + 1),
                    RegT0);
            pb.stb(RegT0, i, RegSP);
        }
    } else {
        // 8 quadword stores covering the same 64 bytes.
        for (int i = 0; i < 8; ++i) {
            pb.andi(RegA0, static_cast<std::uint8_t>(i * 3 + 1),
                    RegT0);
            pb.stq(RegT0, i * 8, RegSP);
        }
    }
    // Read the buffer back as quadwords.
    pb.li(RegV0, 0);
    for (int i = 0; i < 8; ++i) {
        pb.ldq(RegT1, i * 8, RegSP);
        pb.xor_(RegV0, RegT1, RegV0);
    }
    ff.epilogueRet();

    return pb.finish(l_main);
}

struct Result
{
    Cycle cycles;
    std::uint64_t quads_in;
    std::uint64_t fills;
};

Result
run(const Program &prog)
{
    uarch::MachineConfig cfg = harness::baselineConfig(16, 2);
    harness::applySvf(cfg, 1024, 2);
    sim::Emulator oracle(prog);
    uarch::OooCore core(cfg, oracle);
    core.run(400'000);
    return Result{core.stats().cycles,
                  core.svfUnit().svf().quadsIn(),
                  core.svfUnit().svf().demandFills()};
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Config cfg = Config::fromArgs(argc, argv);
    int iters = static_cast<int>(cfg.getUint("iters", 1500));

    harness::banner("Future work: partial-word (x86-style) stack "
                    "references vs the SVF's 64-bit status bits",
                    "Section 7 (future work)");

    Result quads = run(makeFormatter(iters, false));
    Result bytes = run(makeFormatter(iters, true));

    stats::Table t({"store style", "cycles", "svf qw-in",
                    "RMW demand fills"});
    t.addRow();
    t.cell(std::string("64-bit (Alpha)"));
    t.cell(quads.cycles);
    t.cell(quads.quads_in);
    t.cell(quads.fills);
    t.addRow();
    t.cell(std::string("byte (x86-style)"));
    t.cell(bytes.cycles);
    t.cell(bytes.quads_in);
    t.cell(bytes.fills);
    t.print(std::cout);

    std::printf("\nQuadword first-touch stores validate SVF words "
                "for free; byte stores to fresh frames must read-"
                "modify-write every word once (%llu fills here), the "
                "exact cost the paper flags for an x86 SVF.\n",
                (unsigned long long)bytes.fills);
    bench::finishConfig(cfg);
    return 0;
}
