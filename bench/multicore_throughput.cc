/**
 * @file
 * Multi-core throughput and switch-rate sensitivity of the SVF.
 *
 * Two questions the paper leaves open:
 *
 *   [1] Does the SVF's speedup survive when N cores — each with a
 *       private SVF and L1s — contend for one shared L2? The stack
 *       is thread-private by construction, so the SVF should scale
 *       perfectly while the load-balancing L2 pressure grows.
 *
 *   [2] Table 4 measures writeback traffic at one switch rate
 *       (400k instructions). Does the SVF's bytes-per-switch
 *       advantage over the stack cache survive a 10x higher rate,
 *       where frames have less time to die before each flush? This
 *       section runs the cycle model in slice= mode, so the flushes
 *       interact with the pipeline and the refill misses are paid.
 *
 * Config keys beyond bench_util.hh's: mix=a,b[,c...] overrides the
 * default program mix for both sections.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "base/str.hh"
#include "bench_util.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace svf;

namespace
{

/** First @p n entries of the mix, comma-joined ("a,b,..."). */
std::string
mixList(const std::vector<std::string> &mix, std::size_t n)
{
    std::string out;
    for (std::size_t i = 0; i < n; ++i) {
        if (!out.empty())
            out += ",";
        out += mix[i % mix.size()];
    }
    return out;
}

void
scalingSection(bench::Bench &b, const std::vector<std::string> &mix)
{
    std::printf("\n[1] multi-core scaling: aggregate throughput of "
                "N cores over one shared L2 (16-wide, 8KB SVF)\n");

    harness::ExperimentPlan plan;
    for (unsigned cores : {1u, 2u, 4u}) {
        harness::RunSetup s;
        s.workload = mixList(mix, cores);
        s.maxInsts = b.budget();
        s.machine = harness::baselineConfig(16, 2);
        s.cores = cores;
        plan.add("svf/x" + std::to_string(cores), s);
        harness::applySvf(s.machine, 1024, 2);
        plan.add("svf/x" + std::to_string(cores) + "/svf", s);
    }
    const auto res = b.run(plan);

    stats::Table t({"cores", "agg IPC base", "agg IPC svf",
                    "svf speedup", "l2 misses/kinst"});
    for (size_t i = 0; i < 3; ++i) {
        const harness::RunResult &base = res[i * 2].run();
        const harness::RunResult &svf = res[i * 2 + 1].run();
        // Aggregate IPC: summed committed over the across-cores
        // maximum cycle count (the system ran that long).
        double agg_base =
            base.core.cycles
                ? double(base.core.committed) / double(base.core.cycles)
                : 0.0;
        double agg_svf =
            svf.core.cycles
                ? double(svf.core.committed) / double(svf.core.cycles)
                : 0.0;
        t.addRow();
        t.cell(std::uint64_t(1) << i);
        t.cell(agg_base, 3);
        t.cell(agg_svf, 3);
        t.cell(harness::pct(harness::speedupPct(base, svf)));
        t.cell(svf.core.committed
                   ? 1000.0 * double(svf.l2Misses) /
                         double(svf.core.committed)
                   : 0.0,
               2);
    }
    b.print(t);
}

void
switchRateSection(bench::Bench &b,
                  const std::vector<std::string> &mix)
{
    std::printf("\n[2] switch-rate sweep: cycle-model context-switch "
                "traffic, %s round-robined on one core\n",
                mixList(mix, 2).c_str());

    const std::uint64_t periods[] = {400'000, 200'000, 100'000,
                                     40'000};
    harness::ExperimentPlan plan;
    for (std::uint64_t period : periods) {
        harness::RunSetup s;
        s.workload = mixList(mix, 2);
        s.maxInsts = b.budget();
        s.machine = harness::baselineConfig(16, 2);
        s.slicePeriod = period;
        harness::RunSetup svf = s;
        harness::applySvf(svf.machine, 1024, 2);
        plan.add("slice/" + std::to_string(period) + "/svf", svf);
        harness::RunSetup sc = s;
        harness::applyStackCache(sc.machine, 8192, 2);
        plan.add("slice/" + std::to_string(period) + "/stack$", sc);
    }
    const auto res = b.run(plan);

    stats::Table t({"switch period", "switches", "svf B/switch",
                    "stack$ B/switch", "ratio", "svf IPC",
                    "stack$ IPC"});
    for (size_t i = 0; i < std::size(periods); ++i) {
        const harness::RunResult &svf = res[i * 2].run();
        const harness::RunResult &sc = res[i * 2 + 1].run();
        double n_svf =
            svf.core.ctxSwitches ? double(svf.core.ctxSwitches) : 1.0;
        double n_sc =
            sc.core.ctxSwitches ? double(sc.core.ctxSwitches) : 1.0;
        double svf_bytes = double(svf.core.svfCtxBytes) / n_svf;
        double sc_bytes = double(sc.core.scCtxBytes) / n_sc;
        t.addRow();
        t.cell(periods[i]);
        t.cell(svf.core.ctxSwitches);
        t.cell(svf_bytes, 0);
        t.cell(sc_bytes, 0);
        t.cell(svf_bytes > 0.0 ? sc_bytes / svf_bytes : 0.0, 1);
        t.cell(svf.ipc(), 3);
        t.cell(sc.ipc(), 3);
    }
    b.print(t);

    std::printf("\npaper: Table 4 reports a 3-20x per-switch "
                "advantage at a 400k period; the advantage should "
                "persist (and the absolute bytes shrink) as the "
                "period drops, because per-word dirty bits track "
                "exactly what each shorter slice touched.\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Bench b(argc, argv,
                   "Multi-core throughput and context-switch rate "
                   "sensitivity (shared L2, 8KB stack structures)",
                   "beyond Table 4", 300'000);
    b.jsonDefault("BENCH_multicore_throughput.json");

    std::vector<std::string> mix;
    for (const std::string &m :
         split(b.cfg().getString("mix", "gzip,gcc,mcf,parser"), ','))
        mix.push_back(m);

    scalingSection(b, mix);
    switchRateSection(b, mix);
    return b.finish();
}
