/**
 * @file
 * Table 3: memory traffic (quadwords in / quadwords out) for the
 * stack cache and SVF schemes at 2KB, 4KB and 8KB capacities.
 *
 * Traffic is an architectural property of the reference stream, so
 * this table replays the full workloads functionally (see
 * harness/traffic.hh) rather than through the cycle model.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "harness/reporting.hh"
#include "harness/traffic.hh"
#include "stats/table.hh"

using namespace svf;

int
main(int argc, char **argv)
{
    Config cfg = Config::fromArgs(argc, argv);
    std::uint64_t budget = cfg.getUint("insts", 3'000'000);
    bool csv = cfg.getBool("csv", false);

    harness::banner("Table 3: Memory Traffic for Stack Cache and "
                    "SVF Schemes", "Table 3");

    for (std::uint64_t kb : {2, 4, 8}) {
        std::printf("\n--- %llu KB structures ---\n",
                    (unsigned long long)kb);
        stats::Table t({"benchmark", "stack$ qw-in", "svf qw-in",
                        "stack$ qw-out", "svf qw-out"});
        for (const auto &bi : bench::allInputs()) {
            harness::TrafficSetup s;
            s.workload = bi.workload;
            s.input = bi.input;
            s.maxInsts = budget;
            s.capacityBytes = kb * 1024;
            harness::TrafficResult r = harness::measureTraffic(s);

            t.addRow();
            t.cell(bi.display());
            t.cell(r.scQuadsIn);
            t.cell(r.svfQuadsIn);
            t.cell(r.scQuadsOut);
            t.cell(r.svfQuadsOut);
        }
        if (csv)
            t.printCsv(std::cout);
        else
            t.print(std::cout);
    }

    std::printf("\npaper: the SVF reduces traffic by many orders of "
                "magnitude in most scenarios — it never reads on "
                "allocation and never writes back deallocated "
                "frames; only gcc (whose working set exceeds the "
                "SVF) retains meaningful traffic at 8KB.\n");
    bench::finishConfig(cfg);
    return 0;
}
