/**
 * @file
 * Table 3: memory traffic (quadwords in / quadwords out) for the
 * stack cache and SVF schemes at 2KB, 4KB and 8KB capacities.
 *
 * Traffic is an architectural property of the reference stream, so
 * this table replays the full workloads functionally (see
 * harness/traffic.hh) rather than through the cycle model.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "harness/reporting.hh"
#include "harness/runner.hh"
#include "harness/traffic.hh"
#include "stats/table.hh"

using namespace svf;

int
main(int argc, char **argv)
{
    bench::Bench b(argc, argv,
                   "Table 3: Memory Traffic for Stack Cache and "
                   "SVF Schemes", "Table 3", 3'000'000);

    const std::uint64_t capacities[] = {2, 4, 8};
    const auto inputs = bench::allInputs();
    harness::ExperimentPlan plan;
    for (std::uint64_t kb : capacities) {
        for (const auto &bi : inputs) {
            harness::TrafficSetup s;
            s.workload = bi.workload;
            s.input = bi.input;
            s.maxInsts = b.budget();
            s.capacityBytes = kb * 1024;
            plan.add(bi.display() + "/" + std::to_string(kb) + "KB",
                     s);
        }
    }
    const auto res = b.run(plan);

    for (size_t k = 0; k < 3; ++k) {
        std::printf("\n--- %llu KB structures ---\n",
                    (unsigned long long)capacities[k]);
        stats::Table t({"benchmark", "stack$ qw-in", "svf qw-in",
                        "stack$ qw-out", "svf qw-out"});
        for (size_t i = 0; i < inputs.size(); ++i) {
            const harness::TrafficResult &r =
                res[k * inputs.size() + i].traffic();

            t.addRow();
            t.cell(inputs[i].display());
            t.cell(r.scQuadsIn);
            t.cell(r.svfQuadsIn);
            t.cell(r.scQuadsOut);
            t.cell(r.svfQuadsOut);
        }
        b.print(t);
    }

    std::printf("\npaper: the SVF reduces traffic by many orders of "
                "magnitude in most scenarios — it never reads on "
                "allocation and never writes back deallocated "
                "frames; only gcc (whose working set exceeds the "
                "SVF) retains meaningful traffic at 8KB.\n");
    return b.finish();
}
