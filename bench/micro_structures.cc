/**
 * @file
 * google-benchmark microbenchmarks for the simulator's core data
 * structures: SVF window operations, cache probes, the functional
 * emulator and the full cycle model. These bound the simulator's
 * own performance (simulated instructions per host second), not the
 * paper's results.
 */

#include <benchmark/benchmark.h>

#include "core/svf.hh"
#include "harness/experiment.hh"
#include "harness/runner.hh"
#include "mem/cache.hh"
#include "sim/emulator.hh"
#include "workloads/registry.hh"

using namespace svf;

namespace
{

void
BM_SvfWindowSlide(benchmark::State &state)
{
    core::SvfParams p;
    p.entries = static_cast<std::uint32_t>(state.range(0));
    core::StackValueFile f(p, isa::layout::StackBase);
    Addr sp = isa::layout::StackBase;
    for (auto _ : state) {
        sp -= 64;
        f.onSpUpdate(sp);
        f.store(sp, 8);
        sp += 64;
        f.onSpUpdate(sp);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SvfWindowSlide)->Arg(256)->Arg(1024)->Arg(4096);

void
BM_SvfLoadHit(benchmark::State &state)
{
    core::SvfParams p;
    core::StackValueFile f(p, isa::layout::StackBase);
    Addr sp = isa::layout::StackBase - 512;
    f.onSpUpdate(sp);
    for (Addr a = sp; a < sp + 512; a += 8)
        f.store(a, 8);
    Addr a = sp;
    for (auto _ : state) {
        benchmark::DoNotOptimize(f.load(a, 8));
        a = sp + ((a - sp + 8) & 511);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SvfLoadHit);

void
BM_CacheAccess(benchmark::State &state)
{
    mem::Cache c(mem::CacheParams{"bench", 64 * 1024,
                                  static_cast<unsigned>(
                                      state.range(0)), 32, 3});
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(c.access(a, false));
        a = (a + 32) & 0xfffff;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess)->Arg(1)->Arg(4)->Arg(8);

void
BM_FunctionalEmulation(benchmark::State &state)
{
    const auto &w = workloads::workload("gzip");
    isa::Program prog = w.build("log", w.testScale);
    for (auto _ : state) {
        sim::Emulator emu(prog);
        emu.run(50'000);
        benchmark::DoNotOptimize(emu.instCount());
    }
    state.SetItemsProcessed(state.iterations() * 50'000);
}
BENCHMARK(BM_FunctionalEmulation)->Unit(benchmark::kMillisecond);

void
BM_CycleModel(benchmark::State &state)
{
    const auto &w = workloads::workload("gzip");
    isa::Program prog = w.build("log", w.testScale);
    uarch::MachineConfig cfg =
        harness::baselineConfig(static_cast<unsigned>(
            state.range(0)), 2);
    for (auto _ : state) {
        sim::Emulator oracle(prog);
        uarch::OooCore core(cfg, oracle);
        core.run(50'000);
        benchmark::DoNotOptimize(core.stats().cycles);
    }
    state.SetItemsProcessed(state.iterations() * 50'000);
}
BENCHMARK(BM_CycleModel)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void
BM_RunnerPlan(benchmark::State &state)
{
    // The experiment engine itself: an 8-job plan (4 distinct
    // setups, each named twice) through the thread pool. Measures
    // dispatch + dedup + memo overhead around the simulations; the
    // second and later iterations are pure memo hits, so the
    // steady-state cost is the engine, not the cycle model.
    harness::ExperimentPlan plan;
    for (unsigned ports : {1u, 2u}) {
        for (const char *input : {"log", "graphic"}) {
            harness::RunSetup s;
            s.workload = "gzip";
            s.input = input;
            s.maxInsts = 20'000;
            s.machine = harness::baselineConfig(16, ports);
            plan.add(std::string("gzip.") + input + "/a", s);
            plan.add(std::string("gzip.") + input + "/b", s);
        }
    }
    harness::RunnerOptions opts;
    opts.jobs = static_cast<unsigned>(state.range(0));
    harness::Runner runner(opts);
    for (auto _ : state) {
        auto res = runner.run(plan);
        benchmark::DoNotOptimize(res[0].run().core.cycles);
    }
    state.counters["executions"] =
        static_cast<double>(runner.executions());
    state.counters["memo_hits"] =
        static_cast<double>(runner.memoHits());
    state.SetItemsProcessed(state.iterations() * plan.size());
}
BENCHMARK(BM_RunnerPlan)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void
BM_CycleModelWithSvf(benchmark::State &state)
{
    const auto &w = workloads::workload("crafty");
    isa::Program prog = w.build("ref", w.testScale);
    uarch::MachineConfig cfg = harness::baselineConfig(16, 2);
    harness::applySvf(cfg, 1024, 2);
    for (auto _ : state) {
        sim::Emulator oracle(prog);
        uarch::OooCore core(cfg, oracle);
        core.run(50'000);
        benchmark::DoNotOptimize(core.stats().cycles);
    }
    state.SetItemsProcessed(state.iterations() * 50'000);
}
BENCHMARK(BM_CycleModelWithSvf)->Unit(benchmark::kMillisecond);

} // anonymous namespace

BENCHMARK_MAIN();
