/**
 * @file
 * Helpers shared by the figure/table reproduction binaries.
 *
 * Every bench binary follows the same skeleton: parse key=value
 * overrides, print the paper banner, build an ExperimentPlan, run it
 * through the parallel Runner, render tables, and emit the optional
 * JSON report. The Bench class owns that skeleton; the binaries
 * keep only their plan construction and table assembly.
 *
 * Config keys understood by every migrated binary:
 *     insts=N      per-run instruction budget
 *     jobs=N       worker threads (default: hardware concurrency)
 *     json=FILE    write the machine-readable report (json_report.hh)
 *     csv=1        render tables as CSV
 *     progress=1   per-job progress lines on stderr (progress=2:
 *                  one \r-overwritten status line instead)
 *     trace=FILE[,cats][,start,len]  event-trace the plan's one
 *                  cycle-model job (trace/trace.hh): binary at FILE
 *                  plus Chrome/Perfetto JSON at FILE.json. A pure
 *                  observer — counters stay bit-identical — so the
 *                  job is re-simulated even when memoized results
 *                  exist. Refused for plans with several cycle-model
 *                  jobs (they would race for one file).
 *     prof=1       host phase profiler (harness/prof.hh): phase
 *                  wall/CPU breakdown in the "profile" JSON section.
 *     sample=K,W,D[,warm]  interval-sample every cycle-model job:
 *                  K detailed windows of W warmup + D measured
 *                  instructions, fast-forwarding between them
 *                  (ckpt/sampler.hh; ",warm" adds functional
 *                  warming). Changes the results — estimates, not
 *                  full simulations — and the setup keys.
 *     ckpt=DIR     snapshot directory for the sampler fast-forwards
 *                  (ckpt/snapshot.hh); repeated sampled runs of the
 *                  same program skip re-emulation.
 *     pjobs=N      worker threads *inside* each sampled run: the
 *                  detailed windows of one job fan out over N
 *                  threads (harness/experiment.hh). Results are
 *                  byte-identical for any N. Clamped so jobs= times
 *                  pjobs= never oversubscribes the host.
 *     cache=DIR    disk-persistent result cache (ckpt/result_cache
 *                  .hh): completed jobs are served as cached=true
 *                  across process runs.
 *     server=SPEC  run the plan on an svf_simd daemon instead of an
 *                  in-process Runner (serve/client.hh): SPEC is a
 *                  Unix socket path or a TCP loopback port. Results
 *                  and the json= report are byte-identical either
 *                  way; trace= is refused (client-local file),
 *                  cache= is ignored (the daemon owns the cache).
 *     cores=N      run every cycle-model job on an N-core System
 *                  (uarch/system.hh): the job's program replicated
 *                  one per core over a shared L2, or one entry per
 *                  core when the bench supplies a comma mix.
 *     slice=Q      time-slice the job's programs on one core every Q
 *                  committed instructions (multi-programming with
 *                  real SVF/stack-cache/L1 displacement).
 *     quantum=C    multi-core epoch length in cycles (default 1024).
 */

#ifndef SVF_BENCH_BENCH_UTIL_HH
#define SVF_BENCH_BENCH_UTIL_HH

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "base/config.hh"
#include "base/logging.hh"
#include "ckpt/sampler.hh"
#include "harness/json_report.hh"
#include "harness/prof.hh"
#include "harness/reporting.hh"
#include "harness/runner.hh"
#include "serve/client.hh"
#include "stats/table.hh"
#include "trace/trace.hh"
#include "workloads/registry.hh"

namespace svf::bench
{

/** One benchmark/input pair to run. */
struct BenchInput
{
    std::string workload;
    std::string input;

    /** "bzip2.graphic"-style display name. */
    std::string
    display() const
    {
        return workload + "." + input;
    }
};

/** All benchmark/input pairs of Table 1, or the first input of each
 *  benchmark when @p first_input_only. */
inline std::vector<BenchInput>
allInputs(bool first_input_only = false)
{
    std::vector<BenchInput> out;
    for (const auto &w : workloads::allWorkloads()) {
        for (const auto &in : w.inputs) {
            out.push_back({w.name, in});
            if (first_input_only)
                break;
        }
    }
    return out;
}

/** The shared skeleton of one bench binary. */
class Bench
{
  public:
    /**
     * @param default_jobs default worker-thread count when the user
     *        passes no jobs= (0 = hardware concurrency). Wall-time
     *        measuring benches set 1: parallel jobs contend for
     *        cores and poison each other's throughput numbers.
     */
    Bench(int argc, char **argv, const std::string &title,
          const std::string &paper_ref,
          std::uint64_t default_budget = 300'000,
          unsigned default_jobs = 0)
        : _cfg(Config::fromArgs(argc, argv))
    {
        _budget = _cfg.getUint("insts", default_budget);
        _csv = _cfg.getBool("csv", false);
        _jsonPath = _cfg.getString("json", "");
        _sample = ckpt::SamplePlan::parse(
            _cfg.getString("sample", ""));
        _ckptDir = _cfg.getString("ckpt", "");
        _pjobs = static_cast<unsigned>(_cfg.getUint("pjobs", 1));
        _trace = trace::TraceSpec::parse(
            _cfg.getString("trace", ""));
        _prof = _cfg.getBool("prof", false);
        if (_prof)
            harness::prof::Profiler::instance().enable(true);
        harness::systemFromConfig(_cfg, _sys);
        _server = _cfg.getString("server", "");
        harness::RunnerOptions opts;
        opts.jobs =
            static_cast<unsigned>(_cfg.getUint("jobs", default_jobs));
        opts.cacheDir = _cfg.getString("cache", "");
        if (!_server.empty() && !opts.cacheDir.empty()) {
            warn("cache= is ignored with server=: the daemon owns "
                 "the result cache");
            opts.cacheDir.clear();
        }
        // A memoized hit would skip the simulation that produces the
        // trace file, so tracing forces every job to actually run.
        if (_trace.enabled())
            opts.memoize = false;
        std::uint64_t progress = _cfg.getUint("progress", 0);
        if (progress >= 2)
            _progress = harness::statusProgress();
        else if (progress)
            _progress = harness::stderrProgress();
        opts.progress = _progress;
        _runner = std::make_unique<harness::Runner>(opts);
        // Nest pjobs under jobs without oversubscribing: every
        // Runner worker may spin up pjobs interval threads of its
        // own, so their product is capped at the host's cores.
        unsigned hw = std::thread::hardware_concurrency();
        if (hw == 0)
            hw = 1;
        unsigned outer = std::max(1u, _runner->threadCount());
        unsigned cap = std::max(1u, hw / outer);
        if (_pjobs == 0)
            _pjobs = cap;       // pjobs=0: use whatever fits
        _pjobs = std::min(_pjobs, cap);
        harness::banner(title, paper_ref);
    }

    Config &cfg() { return _cfg; }
    std::uint64_t budget() const { return _budget; }
    bool csv() const { return _csv; }
    harness::Runner &runner() { return *_runner; }

    /** Use @p path as the json= sink when the user gave none. */
    void
    jsonDefault(const std::string &path)
    {
        if (_jsonPath.empty())
            _jsonPath = path;
    }

    /**
     * Run @p plan; outcomes feed the JSON report automatically.
     * With sample=/ckpt= set, every cycle-model job of the plan is
     * rewritten to the sampled schedule first (the bench binary's
     * plan construction stays sampling-oblivious).
     */
    std::vector<harness::JobOutcome>
    run(const harness::ExperimentPlan &plan)
    {
        std::vector<harness::JobOutcome> out;
        bool drive_mode = _sys.cores != 1 || _sys.slicePeriod != 0;
        if (_trace.enabled()) {
            if (!_server.empty()) {
                fatal("trace= writes client-local files; drop "
                      "server= or trace=");
            }
            if (drive_mode) {
                fatal("trace= with cores=/slice= would interleave "
                      "several streams into '%s'; drop one",
                      _trace.path.c_str());
            }
            size_t cycle_jobs = 0;
            for (size_t i = 0; i < plan.size(); ++i) {
                cycle_jobs += std::holds_alternative<
                    harness::RunSetup>(plan.job(i).setup);
            }
            if (cycle_jobs != 1) {
                fatal("trace=%s needs exactly one cycle-model job "
                      "in the plan (got %zu): every job would "
                      "overwrite the same file — narrow the bench "
                      "or drop trace=", _trace.path.c_str(),
                      cycle_jobs);
            }
        }
        if (_sample.enabled() || !_ckptDir.empty() || drive_mode ||
            _trace.enabled()) {
            harness::ExperimentPlan rewritten = plan;
            for (size_t i = 0; i < rewritten.size(); ++i) {
                auto *rs = std::get_if<harness::RunSetup>(
                    &rewritten.job(i).setup);
                if (!rs)
                    continue;   // cores=/slice= leave traffic and
                                // profile jobs alone
                rs->sample = _sample;
                rs->ckptDir = _ckptDir;
                rs->pjobs = _pjobs;
                rs->trace = _trace;
                if (drive_mode) {
                    // Never clobber a bench's own per-job drive
                    // modes with the defaults.
                    rs->cores = _sys.cores;
                    rs->slicePeriod = _sys.slicePeriod;
                    rs->sysQuantum = _sys.sysQuantum;
                }
            }
            out = execPlan(rewritten);
        } else {
            out = execPlan(plan);
        }
        _json.add(out);
        return out;
    }

    /** Interval worker threads per sampled run (clamped pjobs=). */
    unsigned pjobs() const { return _pjobs; }

    /**
     * Feed one synthesized outcome into the JSON report — for
     * measurements a bench takes outside the Runner (e.g. the
     * fast-forward microbenchmarks of host_throughput) that should
     * still reach json=FILE and the committed baselines.
     */
    void
    addOutcome(const harness::JobOutcome &o)
    {
        _json.add(o);
    }

    /** Render @p t honouring csv=. */
    void
    print(const stats::Table &t)
    {
        if (_csv)
            t.printCsv(std::cout);
        else
            t.print(std::cout);
    }

    /** Emit json=, warn about config typos; returns main()'s rc. */
    int
    finish()
    {
        if (_prof) {
            _json.setProfile(
                harness::prof::Profiler::instance().reportJson());
        }
        if (!_jsonPath.empty())
            _json.writeFile(_jsonPath);
        _cfg.warnUnused();
        return 0;
    }

    /** JSON report under construction (host_throughput's profile
     *  table reads the same data it will emit). */
    harness::JsonReport &json() { return _json; }

    /** Was prof=1 given? */
    bool profEnabled() const { return _prof; }

  private:
    /** Local Runner or the server= daemon, same outcome contract. */
    std::vector<harness::JobOutcome>
    execPlan(const harness::ExperimentPlan &plan)
    {
        if (_server.empty())
            return _runner->run(plan);
        serve::Client client;
        std::vector<harness::JobOutcome> out;
        std::string err;
        if (!client.connect(_server, err))
            fatal("%s", err.c_str());
        if (!client.runPlan(plan, out, err, _progress))
            fatal("%s", err.c_str());
        return out;
    }

    Config _cfg;
    std::uint64_t _budget = 0;
    bool _csv = false;
    std::string _jsonPath;
    ckpt::SamplePlan _sample;
    std::string _ckptDir;
    unsigned _pjobs = 1;
    trace::TraceSpec _trace;
    bool _prof = false;
    std::string _server;
    harness::RunSetup _sys;     //!< cores=/slice=/quantum= defaults
    harness::ProgressHook _progress;
    std::unique_ptr<harness::Runner> _runner;
    harness::JsonReport _json;
};

/** The standard trailing average row over per-column speedups. */
inline void
addMeanRow(stats::Table &t,
           const std::vector<std::vector<double>> &cols,
           const std::string &label = "average")
{
    t.addRow();
    t.cell(label);
    for (const auto &c : cols)
        t.cell(harness::pct(harness::mean(c)));
}

} // namespace svf::bench

#endif // SVF_BENCH_BENCH_UTIL_HH
