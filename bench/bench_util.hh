/**
 * @file
 * Helpers shared by the figure/table reproduction binaries.
 */

#ifndef SVF_BENCH_BENCH_UTIL_HH
#define SVF_BENCH_BENCH_UTIL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "base/config.hh"
#include "workloads/registry.hh"

namespace svf::bench
{

/** One benchmark/input pair to run. */
struct BenchInput
{
    std::string workload;
    std::string input;

    /** "bzip2.graphic"-style display name. */
    std::string
    display() const
    {
        return workload + "." + input;
    }
};

/** All benchmark/input pairs of Table 1, or the first input of each
 *  benchmark when @p first_input_only. */
inline std::vector<BenchInput>
allInputs(bool first_input_only = false)
{
    std::vector<BenchInput> out;
    for (const auto &w : workloads::allWorkloads()) {
        for (const auto &in : w.inputs) {
            out.push_back({w.name, in});
            if (first_input_only)
                break;
        }
    }
    return out;
}

/** Per-run instruction budget from the command line (insts=N). */
inline std::uint64_t
instBudget(const Config &cfg, std::uint64_t def = 300'000)
{
    return cfg.getUint("insts", def);
}

/** Warn about config typos; call at the end of main(). */
inline void
finishConfig(const Config &cfg)
{
    for (const auto &key : cfg.unusedKeys())
        std::fprintf(stderr, "warn: unused config key '%s'\n",
                     key.c_str());
}

} // namespace svf::bench

#endif // SVF_BENCH_BENCH_UTIL_HH
