/**
 * @file
 * Figure 7: comparison of cache implementations on the 16-wide
 * machine, in the paper's (R+S) notation — R universal DL1 ports
 * plus S SVF or stack-cache ports. The (4+0) configuration pays one
 * extra cycle of DL1 latency for its higher portedness, as in the
 * paper. Speedups are relative to the (2+0) baseline.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace svf;

int
main(int argc, char **argv)
{
    bench::Bench b(argc, argv,
                   "Figure 7: SVF vs Stack Cache vs Baseline "
                   "(16-wide, 8KB stack structures)", "Figure 7");

    using Mutator = void (*)(uarch::MachineConfig &);
    struct Column
    {
        const char *name;
        Mutator mutate;
    };
    const Column columns[] = {
        {"(4+0)", [](uarch::MachineConfig &m) {
             m.dl1Ports = 4;
             m.hier.dl1.hitLatency = 4;  // extra ports cost latency
         }},
        {"(2+2)stack$", [](uarch::MachineConfig &m) {
             harness::applyStackCache(m, 8192, 2);
         }},
        {"(2+2)svf", [](uarch::MachineConfig &m) {
             harness::applySvf(m, 1024, 2);
         }},
        {"(2+2)svf_nosq", [](uarch::MachineConfig &m) {
             harness::applySvf(m, 1024, 2);
             m.svf.noSquash = true;
         }},
    };

    // Per input: job 0 is the (2+0) baseline, 1..4 the columns.
    const auto inputs = bench::allInputs();
    harness::ExperimentPlan plan;
    for (const auto &bi : inputs) {
        harness::RunSetup s;
        s.workload = bi.workload;
        s.input = bi.input;
        s.maxInsts = b.budget();
        s.machine = harness::baselineConfig(16, 2);
        plan.add(bi.display() + "/(2+0)", s);
        for (const Column &col : columns) {
            harness::RunSetup s2 = s;
            col.mutate(s2.machine);
            plan.add(bi.display() + "/" + col.name, s2);
        }
    }
    const auto res = b.run(plan);

    stats::Table t({"benchmark", "(4+0)", "(2+2)stack$", "(2+2)svf",
                    "(2+2)svf_nosq", "squashes"});
    std::vector<std::vector<double>> cols(4);

    for (size_t i = 0; i < inputs.size(); ++i) {
        const harness::JobOutcome *jobs = &res[i * 5];
        t.addRow();
        t.cell(inputs[i].display());
        std::uint64_t squashes = 0;
        for (size_t c = 0; c < 4; ++c) {
            const harness::RunResult &r = jobs[1 + c].run();
            double sp = harness::speedupPct(jobs[0].run(), r);
            cols[c].push_back(sp);
            t.cell(harness::pct(sp));
            if (std::string(columns[c].name) == "(2+2)svf")
                squashes = r.core.squashes;
        }
        t.cell(squashes);
    }

    t.addRow();
    t.cell(std::string("average"));
    for (size_t c = 0; c < 4; ++c)
        t.cell(harness::pct(harness::mean(cols[c])));
    t.cell(std::string(""));

    b.print(t);
    std::printf("\npaper: the (2+2) SVF outperforms the more "
                "flexible (4+0) by ~4%% and the (2+2) stack cache "
                "by ~9%% (14%% with no_squash); eon is the squash "
                "anomaly that no_squash recovers.\n");
    return b.finish();
}
