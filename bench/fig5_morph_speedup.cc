/**
 * @file
 * Figure 5: speedup potential of morphing all stack accesses to
 * register moves — an infinite-size, infinite-port SVF on the 4-,
 * 8- and 16-wide machines with a perfect predictor, plus the
 * 16-wide machine under gshare (both the baseline and the SVF run
 * use the same predictor, as in the paper).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace svf;

int
main(int argc, char **argv)
{
    bench::Bench b(argc, argv,
                   "Figure 5: Speedup Potential of Morphing All "
                   "Stack Accesses to Register Moves", "Figure 5");

    struct Column
    {
        const char *name;
        unsigned width;
        const char *bpred;
    };
    const Column columns[] = {
        {"4-wide", 4, "perfect"},
        {"8-wide", 8, "perfect"},
        {"16-wide", 16, "perfect"},
        {"16-wide gshare", 16, "gshare"},
    };

    // Per input: (baseline, infinite-SVF) pairs for each column.
    const auto inputs = bench::allInputs(true);
    harness::ExperimentPlan plan;
    for (const auto &bi : inputs) {
        for (const Column &col : columns) {
            harness::RunSetup s;
            s.workload = bi.workload;
            s.input = bi.input;
            s.maxInsts = b.budget();
            s.machine = harness::baselineConfig(col.width, 2,
                                                col.bpred);
            plan.add(bi.display() + "/" + col.name + "/base", s);
            harness::applyInfiniteSvf(s.machine);
            plan.add(bi.display() + "/" + col.name + "/inf_svf", s);
        }
    }
    const auto res = b.run(plan);

    stats::Table t({"benchmark", "4-wide", "8-wide", "16-wide",
                    "16-wide gshare"});
    std::vector<std::vector<double>> col_speedups(4);

    for (size_t i = 0; i < inputs.size(); ++i) {
        const harness::JobOutcome *jobs = &res[i * 8];
        t.addRow();
        t.cell(inputs[i].display());
        for (size_t c = 0; c < 4; ++c) {
            double sp = harness::speedupPct(jobs[c * 2].run(),
                                            jobs[c * 2 + 1].run());
            col_speedups[c].push_back(sp);
            t.cell(harness::pct(sp));
        }
    }

    bench::addMeanRow(t, col_speedups);
    b.print(t);
    std::printf("\npaper: average speedups of 11%%, 19%% and 31%% "
                "for 4-, 8- and 16-wide with perfect prediction, "
                "and 25%% for 16-wide with gshare.\n");
    return b.finish();
}
