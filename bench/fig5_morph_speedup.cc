/**
 * @file
 * Figure 5: speedup potential of morphing all stack accesses to
 * register moves — an infinite-size, infinite-port SVF on the 4-,
 * 8- and 16-wide machines with a perfect predictor, plus the
 * 16-wide machine under gshare (both the baseline and the SVF run
 * use the same predictor, as in the paper).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "stats/table.hh"

using namespace svf;

int
main(int argc, char **argv)
{
    Config cfg = Config::fromArgs(argc, argv);
    std::uint64_t budget = bench::instBudget(cfg);

    harness::banner("Figure 5: Speedup Potential of Morphing All "
                    "Stack Accesses to Register Moves", "Figure 5");

    struct Column
    {
        const char *name;
        unsigned width;
        const char *bpred;
    };
    const Column columns[] = {
        {"4-wide", 4, "perfect"},
        {"8-wide", 8, "perfect"},
        {"16-wide", 16, "perfect"},
        {"16-wide gshare", 16, "gshare"},
    };

    stats::Table t({"benchmark", "4-wide", "8-wide", "16-wide",
                    "16-wide gshare"});
    std::vector<std::vector<double>> col_speedups(4);

    for (const auto &bi : bench::allInputs(true)) {
        t.addRow();
        t.cell(bi.display());
        for (size_t c = 0; c < 4; ++c) {
            harness::RunSetup s;
            s.workload = bi.workload;
            s.input = bi.input;
            s.maxInsts = budget;
            s.machine = harness::baselineConfig(columns[c].width, 2,
                                                columns[c].bpred);
            harness::RunResult base = harness::runExperiment(s);

            harness::applyInfiniteSvf(s.machine);
            harness::RunResult opt = harness::runExperiment(s);

            double sp = harness::speedupPct(base, opt);
            col_speedups[c].push_back(sp);
            t.cell(harness::pct(sp));
        }
    }

    t.addRow();
    t.cell(std::string("average"));
    for (size_t c = 0; c < 4; ++c)
        t.cell(harness::pct(harness::mean(col_speedups[c])));

    t.print(std::cout);
    std::printf("\npaper: average speedups of 11%%, 19%% and 31%% "
                "for 4-, 8- and 16-wide with perfect prediction, "
                "and 25%% for 16-wide with gshare.\n");
    bench::finishConfig(cfg);
    return 0;
}
