/**
 * @file
 * Ablation study of the SVF's design choices (DESIGN.md section 5):
 *
 *   1. kill-on-shrink  — drop dirty words of deallocated frames
 *   2. no-fill-on-alloc — skip reads for newly allocated words
 *   3. per-word dirty bits — 8B vs coarser flush granularity
 *   4. morphing — decode-stage register moves vs reroute-only
 *
 * The first three are traffic properties (measured architecturally);
 * the fourth is a timing property (measured on the cycle model by
 * forcing every stack reference down the reroute path).
 *
 * All four sections share one Runner — and therefore one memo
 * cache, so e.g. section [2]'s fine-granule measurement and any
 * other section asking for the same traffic setup simulate once.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/runner.hh"
#include "harness/traffic.hh"
#include "stats/table.hh"

using namespace svf;

namespace
{

void
trafficAblation(bench::Bench &b, std::uint64_t budget)
{
    std::printf("\n[1+2] liveness semantics: traffic with each "
                "semantic advantage disabled (8KB SVF)\n");

    const auto inputs = bench::allInputs(true);
    harness::ExperimentPlan plan;
    for (const auto &bi : inputs) {
        harness::TrafficSetup s;
        s.workload = bi.workload;
        s.input = bi.input;
        s.maxInsts = budget;
        plan.add(bi.display() + "/base", s);

        harness::TrafficSetup nokill = s;
        nokill.svfKillOnShrink = false;
        plan.add(bi.display() + "/no-kill", nokill);

        harness::TrafficSetup fill = s;
        fill.svfFillOnAlloc = true;
        plan.add(bi.display() + "/fill-alloc", fill);
    }
    const auto res = b.run(plan);

    stats::Table t({"benchmark", "qw-out base", "qw-out no-kill",
                    "qw-in base", "qw-in fill-alloc"});
    for (size_t i = 0; i < inputs.size(); ++i) {
        const harness::JobOutcome *jobs = &res[i * 3];
        t.addRow();
        t.cell(inputs[i].display());
        t.cell(jobs[0].traffic().svfQuadsOut);
        t.cell(jobs[1].traffic().svfQuadsOut);
        t.cell(jobs[0].traffic().svfQuadsIn);
        t.cell(jobs[2].traffic().svfQuadsIn);
    }
    b.print(t);
}

void
granuleAblation(bench::Bench &b, std::uint64_t budget)
{
    std::printf("\n[3] dirty-bit granularity: context-switch bytes "
                "per switch (period 400k)\n");

    const auto inputs = bench::allInputs(true);
    harness::ExperimentPlan plan;
    for (const auto &bi : inputs) {
        harness::TrafficSetup s;
        s.workload = bi.workload;
        s.input = bi.input;
        s.maxInsts = budget;
        s.slicePeriod = 400'000;
        plan.add(bi.display() + "/8B", s);

        harness::TrafficSetup coarse = s;
        coarse.svfDirtyGranule = 32;
        plan.add(bi.display() + "/32B", coarse);
    }
    const auto res = b.run(plan);

    stats::Table t({"benchmark", "8B words", "32B lines",
                    "stack cache"});
    for (size_t i = 0; i < inputs.size(); ++i) {
        const harness::TrafficResult &fine = res[i * 2].traffic();
        const harness::TrafficResult &coarse =
            res[i * 2 + 1].traffic();

        double n = fine.ctxSwitches ? double(fine.ctxSwitches) : 1.0;
        t.addRow();
        t.cell(inputs[i].display());
        t.cell(double(fine.svfCtxBytes) / n, 0);
        t.cell(double(coarse.svfCtxBytes) / n, 0);
        t.cell(double(fine.scCtxBytes) / n, 0);
    }
    b.print(t);
    std::printf("(coarser dirty bits close most of the SVF's Table 4 "
                "advantage: the win comes from per-word tracking "
                "plus dead-frame invalidation)\n");
}

void
morphAblation(bench::Bench &b, std::uint64_t budget)
{
    std::printf("\n[4] morphing: speedup over baseline with decode-"
                "stage morphing vs a reroute-only SVF (16-wide, "
                "(2+2))\n");

    const auto inputs = bench::allInputs(true);
    harness::ExperimentPlan plan;
    for (const auto &bi : inputs) {
        harness::RunSetup s;
        s.workload = bi.workload;
        s.input = bi.input;
        s.maxInsts = budget;
        s.machine = harness::baselineConfig(16, 2);
        plan.add(bi.display() + "/base", s);

        harness::RunSetup full = s;
        harness::applySvf(full.machine, 1024, 2);
        plan.add(bi.display() + "/svf-full", full);

        // Reroute-only: same SVF storage, but no decode-stage
        // morphing — every stack reference waits for address
        // generation and then bounds-checks into the SVF. The
        // bandwidth benefit survives; the latency/renaming benefit
        // is ablated.
        harness::RunSetup reroute = full;
        reroute.machine.svf.morphSpRefs = false;
        plan.add(bi.display() + "/svf-reroute", reroute);
    }
    const auto res = b.run(plan);

    stats::Table t({"benchmark", "svf full", "svf reroute-only"});
    std::vector<double> full_col;
    std::vector<double> reroute_col;
    for (size_t i = 0; i < inputs.size(); ++i) {
        const harness::JobOutcome *jobs = &res[i * 3];
        double f = harness::speedupPct(jobs[0].run(), jobs[1].run());
        double r = harness::speedupPct(jobs[0].run(), jobs[2].run());
        full_col.push_back(f);
        reroute_col.push_back(r);
        t.addRow();
        t.cell(inputs[i].display());
        t.cell(harness::pct(f));
        t.cell(harness::pct(r));
    }
    bench::addMeanRow(t, {full_col, reroute_col});
    b.print(t);
}

void
dynamicDisableAblation(bench::Bench &b, std::uint64_t budget)
{
    std::printf("\n[5] dynamic disable (Section 3.3): a tiny 512B "
                "SVF on the window-miss-heavy gcc\n");

    harness::ExperimentPlan plan;
    for (bool dynamic : {false, true}) {
        harness::RunSetup s;
        s.workload = "gcc";
        s.input = "cp-decl";
        s.maxInsts = budget;
        s.machine = harness::baselineConfig(16, 2);
        harness::applySvf(s.machine, 64, 2);    // 512B window
        s.machine.svf.dynamicDisable = dynamic;
        s.machine.svf.monitorRefs = 512;
        s.machine.svf.missRateThreshold = 0.15;
        s.machine.svf.disableRefs = 4096;
        plan.add(dynamic ? "gcc/dynamic" : "gcc/always-on", s);
    }
    const auto res = b.run(plan);

    stats::Table t({"mode", "cycles", "svf qw-in+out",
                    "window misses"});
    for (size_t i = 0; i < 2; ++i) {
        const harness::RunResult &r = res[i].run();
        t.addRow();
        t.cell(std::string(i ? "dynamic disable" : "always on"));
        t.cell(r.core.cycles);
        t.cell(r.svfQuadsIn + r.svfQuadsOut);
        t.cell(r.svfWindowMisses);
    }
    b.print(t);
    std::printf("(the paper: \"If shown to be necessary because of "
                "localized poor SVF performance, the SVF can be "
                "dynamically disabled for a period of time.\" — "
                "here the throttle trades a slice of the remaining "
                "speedup for an ~8x cut in fill/writeback traffic "
                "when the window thrashes)\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bench::Bench b(argc, argv,
                   "Ablation: the SVF's design choices",
                   "Sections 3.3 and 5.3", 2'000'000);
    std::uint64_t traffic_budget = b.budget();
    std::uint64_t timing_budget = b.cfg().getUint("timing_insts",
                                                  300'000);

    trafficAblation(b, traffic_budget);
    granuleAblation(b, traffic_budget);
    morphAblation(b, timing_budget);
    dynamicDisableAblation(b, timing_budget);

    return b.finish();
}
