/**
 * @file
 * Ablation study of the SVF's design choices (DESIGN.md section 5):
 *
 *   1. kill-on-shrink  — drop dirty words of deallocated frames
 *   2. no-fill-on-alloc — skip reads for newly allocated words
 *   3. per-word dirty bits — 8B vs coarser flush granularity
 *   4. morphing — decode-stage register moves vs reroute-only
 *
 * The first three are traffic properties (measured architecturally);
 * the fourth is a timing property (measured on the cycle model by
 * forcing every stack reference down the reroute path).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/traffic.hh"
#include "stats/table.hh"

using namespace svf;

namespace
{

void
trafficAblation(std::uint64_t budget)
{
    std::printf("\n[1+2] liveness semantics: traffic with each "
                "semantic advantage disabled (8KB SVF)\n");
    stats::Table t({"benchmark", "qw-out base", "qw-out no-kill",
                    "qw-in base", "qw-in fill-alloc"});
    for (const auto &bi : bench::allInputs(true)) {
        harness::TrafficSetup s;
        s.workload = bi.workload;
        s.input = bi.input;
        s.maxInsts = budget;

        harness::TrafficResult base = harness::measureTraffic(s);

        harness::TrafficSetup nokill = s;
        nokill.svfKillOnShrink = false;
        harness::TrafficResult nk = harness::measureTraffic(nokill);

        harness::TrafficSetup fill = s;
        fill.svfFillOnAlloc = true;
        harness::TrafficResult fa = harness::measureTraffic(fill);

        t.addRow();
        t.cell(bi.display());
        t.cell(base.svfQuadsOut);
        t.cell(nk.svfQuadsOut);
        t.cell(base.svfQuadsIn);
        t.cell(fa.svfQuadsIn);
    }
    t.print(std::cout);
}

void
granuleAblation(std::uint64_t budget)
{
    std::printf("\n[3] dirty-bit granularity: context-switch bytes "
                "per switch (period 400k)\n");
    stats::Table t({"benchmark", "8B words", "32B lines",
                    "stack cache"});
    for (const auto &bi : bench::allInputs(true)) {
        harness::TrafficSetup s;
        s.workload = bi.workload;
        s.input = bi.input;
        s.maxInsts = budget;
        s.ctxSwitchPeriod = 400'000;

        harness::TrafficResult fine = harness::measureTraffic(s);
        harness::TrafficSetup coarse_s = s;
        coarse_s.svfDirtyGranule = 32;
        harness::TrafficResult coarse =
            harness::measureTraffic(coarse_s);

        double n = fine.ctxSwitches ? double(fine.ctxSwitches) : 1.0;
        t.addRow();
        t.cell(bi.display());
        t.cell(double(fine.svfCtxBytes) / n, 0);
        t.cell(double(coarse.svfCtxBytes) / n, 0);
        t.cell(double(fine.scCtxBytes) / n, 0);
    }
    t.print(std::cout);
    std::printf("(coarser dirty bits close most of the SVF's Table 4 "
                "advantage: the win comes from per-word tracking "
                "plus dead-frame invalidation)\n");
}

void
morphAblation(std::uint64_t budget)
{
    std::printf("\n[4] morphing: speedup over baseline with decode-"
                "stage morphing vs a reroute-only SVF (16-wide, "
                "(2+2))\n");
    stats::Table t({"benchmark", "svf full", "svf reroute-only"});
    std::vector<double> full_col;
    std::vector<double> reroute_col;
    for (const auto &bi : bench::allInputs(true)) {
        harness::RunSetup s;
        s.workload = bi.workload;
        s.input = bi.input;
        s.maxInsts = budget;
        s.machine = harness::baselineConfig(16, 2);
        harness::RunResult base = harness::runExperiment(s);

        harness::RunSetup full = s;
        harness::applySvf(full.machine, 1024, 2);
        harness::RunResult rf = harness::runExperiment(full);

        // Reroute-only: same SVF storage, but no decode-stage
        // morphing — every stack reference waits for address
        // generation and then bounds-checks into the SVF. The
        // bandwidth benefit survives; the latency/renaming benefit
        // is ablated.
        harness::RunSetup reroute = full;
        reroute.machine.svf.morphSpRefs = false;
        harness::RunResult rr = harness::runExperiment(reroute);

        double f = harness::speedupPct(base, rf);
        double r = harness::speedupPct(base, rr);
        full_col.push_back(f);
        reroute_col.push_back(r);
        t.addRow();
        t.cell(bi.display());
        t.cell(harness::pct(f));
        t.cell(harness::pct(r));
    }
    t.addRow();
    t.cell(std::string("average"));
    t.cell(harness::pct(harness::mean(full_col)));
    t.cell(harness::pct(harness::mean(reroute_col)));
    t.print(std::cout);
}

void
dynamicDisableAblation(std::uint64_t budget)
{
    std::printf("\n[5] dynamic disable (Section 3.3): a tiny 512B "
                "SVF on the window-miss-heavy gcc\n");
    stats::Table t({"mode", "cycles", "svf qw-in+out",
                    "window misses"});
    for (bool dynamic : {false, true}) {
        harness::RunSetup s;
        s.workload = "gcc";
        s.input = "cp-decl";
        s.maxInsts = budget;
        s.machine = harness::baselineConfig(16, 2);
        harness::applySvf(s.machine, 64, 2);    // 512B window
        s.machine.svf.dynamicDisable = dynamic;
        s.machine.svf.monitorRefs = 512;
        s.machine.svf.missRateThreshold = 0.15;
        s.machine.svf.disableRefs = 4096;
        harness::RunResult r = harness::runExperiment(s);
        t.addRow();
        t.cell(std::string(dynamic ? "dynamic disable" : "always on"));
        t.cell(r.core.cycles);
        t.cell(r.svfQuadsIn + r.svfQuadsOut);
        t.cell(r.svfWindowMisses);
    }
    t.print(std::cout);
    std::printf("(the paper: \"If shown to be necessary because of "
                "localized poor SVF performance, the SVF can be "
                "dynamically disabled for a period of time.\" — "
                "here the throttle trades a slice of the remaining "
                "speedup for an ~8x cut in fill/writeback traffic "
                "when the window thrashes)\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    Config cfg = Config::fromArgs(argc, argv);
    std::uint64_t traffic_budget = cfg.getUint("insts", 2'000'000);
    std::uint64_t timing_budget = cfg.getUint("timing_insts",
                                              300'000);

    harness::banner("Ablation: the SVF's design choices",
                    "Sections 3.3 and 5.3");

    trafficAblation(traffic_budget);
    granuleAblation(traffic_budget);
    morphAblation(timing_budget);
    dynamicDisableAblation(timing_budget);

    bench::finishConfig(cfg);
    return 0;
}
