/**
 * @file
 * Figure 3: cumulative distribution of stack reference offsets from
 * the top of stack (the paper plots this per function on a log10
 * axis; we report the same CDF at power-of-two byte boundaries).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "harness/reporting.hh"
#include "harness/runner.hh"
#include "stats/table.hh"
#include "workloads/calibration.hh"

using namespace svf;

int
main(int argc, char **argv)
{
    bench::Bench b(argc, argv,
                   "Figure 3: Offset Locality within a Function",
                   "Figure 3", 1'000'000);

    const auto inputs = bench::allInputs();
    harness::ExperimentPlan plan;
    for (const auto &bi : inputs) {
        harness::ProfileSetup s;
        s.workload = bi.workload;
        s.input = bi.input;
        s.maxInsts = b.budget();
        plan.add(bi.display(), s);
    }
    const auto res = b.run(plan);

    stats::Table t({"benchmark", "avg offset (B)", "<64B %",
                    "<256B %", "<1KB %", "<=8KB %", "below TOS"});

    for (size_t i = 0; i < inputs.size(); ++i) {
        const workloads::StackProfile &p = res[i].profile();

        // offsetCdf[b] is the fraction of references at offsets
        // strictly below 2^b bytes.
        auto cdf_at = [&](unsigned log2b) {
            if (p.offsetCdf.empty())
                return 0.0;
            unsigned idx = std::min<unsigned>(
                log2b, unsigned(p.offsetCdf.size() - 1));
            return 100.0 * p.offsetCdf[idx];
        };

        t.addRow();
        t.cell(inputs[i].display());
        t.cell(p.avgOffsetBytes, 1);
        t.cell(cdf_at(6), 2);
        t.cell(cdf_at(8), 2);
        t.cell(cdf_at(10), 2);
        t.cell(100.0 * p.within8k, 2);
        t.cell(p.belowTos);
    }

    b.print(t);

    std::printf("\npaper: average distance from TOS ranges from 2.5 "
                "bytes (bzip2) to 380 bytes (gcc); over 99%% of "
                "references within 8KB of TOS except gcc; no "
                "references below the TOS.\n");
    return b.finish();
}
