/**
 * @file
 * Figure 3: cumulative distribution of stack reference offsets from
 * the top of stack (the paper plots this per function on a log10
 * axis; we report the same CDF at power-of-two byte boundaries).
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "harness/reporting.hh"
#include "stats/table.hh"
#include "workloads/calibration.hh"

using namespace svf;

int
main(int argc, char **argv)
{
    Config cfg = Config::fromArgs(argc, argv);
    std::uint64_t budget = bench::instBudget(cfg, 1'000'000);
    bool csv = cfg.getBool("csv", false);

    harness::banner("Figure 3: Offset Locality within a Function",
                    "Figure 3");

    stats::Table t({"benchmark", "avg offset (B)", "<64B %",
                    "<256B %", "<1KB %", "<=8KB %", "below TOS"});

    for (const auto &bi : bench::allInputs()) {
        const auto &w = workloads::workload(bi.workload);
        workloads::StackProfile p = workloads::profileProgram(
            w.build(bi.input, w.defaultScale), budget);

        // offsetCdf[b] is the fraction of references at offsets
        // strictly below 2^b bytes.
        auto cdf_at = [&](unsigned log2b) {
            if (p.offsetCdf.empty())
                return 0.0;
            unsigned idx = std::min<unsigned>(
                log2b, unsigned(p.offsetCdf.size() - 1));
            return 100.0 * p.offsetCdf[idx];
        };

        t.addRow();
        t.cell(bi.display());
        t.cell(p.avgOffsetBytes, 1);
        t.cell(cdf_at(6), 2);
        t.cell(cdf_at(8), 2);
        t.cell(cdf_at(10), 2);
        t.cell(100.0 * p.within8k, 2);
        t.cell(p.belowTos);
    }

    if (csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);

    std::printf("\npaper: average distance from TOS ranges from 2.5 "
                "bytes (bzip2) to 380 bytes (gcc); over 99%% of "
                "references within 8KB of TOS except gcc; no "
                "references below the TOS.\n");
    bench::finishConfig(cfg);
    return 0;
}
