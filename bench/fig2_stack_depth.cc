/**
 * @file
 * Figure 2: stack depth variation over time, in 64-bit units (the
 * paper plots depth against execution time; 1000 units = 8KB, the
 * SVF capacity the paper argues is adequate).
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "harness/reporting.hh"
#include "harness/runner.hh"
#include "stats/table.hh"
#include "workloads/calibration.hh"

using namespace svf;

int
main(int argc, char **argv)
{
    bench::Bench b(argc, argv,
                   "Figure 2: Stack Depth Variation over Time",
                   "Figure 2", 1'000'000);
    std::string series_of = b.cfg().getString("series", "");

    const auto inputs = bench::allInputs();
    harness::ExperimentPlan plan;
    for (const auto &bi : inputs) {
        harness::ProfileSetup s;
        s.workload = bi.workload;
        s.input = bi.input;
        s.maxInsts = b.budget();
        s.depthSamples = 512;
        plan.add(bi.display(), s);
    }
    const auto res = b.run(plan);

    stats::Table t({"benchmark", "max depth (words)", "p10", "p50",
                    "p90", "fits 8KB (1000 words)"});

    for (size_t i = 0; i < inputs.size(); ++i) {
        const workloads::StackProfile &p = res[i].profile();

        // Depth percentiles over the sampled series (steady state:
        // skip the first tenth as initialization).
        std::vector<std::uint64_t> depths;
        size_t skip = p.depthSamples.size() / 10;
        for (size_t j = skip; j < p.depthSamples.size(); ++j)
            depths.push_back(p.depthSamples[j].second);
        std::sort(depths.begin(), depths.end());
        auto pct_at = [&](double q) -> std::uint64_t {
            if (depths.empty())
                return 0;
            return depths[std::min(depths.size() - 1,
                                   size_t(q * depths.size()))];
        };

        t.addRow();
        t.cell(inputs[i].display());
        t.cell(p.maxDepthWords);
        t.cell(pct_at(0.10));
        t.cell(pct_at(0.50));
        t.cell(pct_at(0.90));
        t.cell(std::string(p.maxDepthWords <= 1000 ? "yes" : "NO"));

        if (inputs[i].display() == series_of) {
            std::printf("# depth series for %s (insts, words)\n",
                        series_of.c_str());
            for (const auto &[icount, depth] : p.depthSamples)
                std::printf("%llu,%llu\n",
                            (unsigned long long)icount,
                            (unsigned long long)depth);
        }
    }

    b.print(t);

    std::printf("\npaper: a 1000-unit (8KB) SVF is larger than the "
                "maximum stack depth for most applications; gcc is "
                "the exception.\n");
    std::printf("(pass series=<bench.input> to dump the full time "
                "series)\n");
    return b.finish();
}
