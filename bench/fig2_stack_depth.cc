/**
 * @file
 * Figure 2: stack depth variation over time, in 64-bit units (the
 * paper plots depth against execution time; 1000 units = 8KB, the
 * SVF capacity the paper argues is adequate).
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "harness/reporting.hh"
#include "stats/table.hh"
#include "workloads/calibration.hh"

using namespace svf;

int
main(int argc, char **argv)
{
    Config cfg = Config::fromArgs(argc, argv);
    std::uint64_t budget = bench::instBudget(cfg, 1'000'000);
    bool csv = cfg.getBool("csv", false);
    std::string series_of = cfg.getString("series", "");

    harness::banner("Figure 2: Stack Depth Variation over Time",
                    "Figure 2");

    stats::Table t({"benchmark", "max depth (words)", "p10", "p50",
                    "p90", "fits 8KB (1000 words)"});

    for (const auto &bi : bench::allInputs()) {
        const auto &w = workloads::workload(bi.workload);
        workloads::StackProfile p = workloads::profileProgram(
            w.build(bi.input, w.defaultScale), budget, 512);

        // Depth percentiles over the sampled series (steady state:
        // skip the first tenth as initialization).
        std::vector<std::uint64_t> depths;
        size_t skip = p.depthSamples.size() / 10;
        for (size_t i = skip; i < p.depthSamples.size(); ++i)
            depths.push_back(p.depthSamples[i].second);
        std::sort(depths.begin(), depths.end());
        auto pct_at = [&](double q) -> std::uint64_t {
            if (depths.empty())
                return 0;
            return depths[std::min(depths.size() - 1,
                                   size_t(q * depths.size()))];
        };

        t.addRow();
        t.cell(bi.display());
        t.cell(p.maxDepthWords);
        t.cell(pct_at(0.10));
        t.cell(pct_at(0.50));
        t.cell(pct_at(0.90));
        t.cell(std::string(p.maxDepthWords <= 1000 ? "yes" : "NO"));

        if (bi.display() == series_of) {
            std::printf("# depth series for %s (insts, words)\n",
                        series_of.c_str());
            for (const auto &[icount, depth] : p.depthSamples)
                std::printf("%llu,%llu\n",
                            (unsigned long long)icount,
                            (unsigned long long)depth);
        }
    }

    if (csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);

    std::printf("\npaper: a 1000-unit (8KB) SVF is larger than the "
                "maximum stack depth for most applications; gcc is "
                "the exception.\n");
    std::printf("(pass series=<bench.input> to dump the full time "
                "series)\n");
    bench::finishConfig(cfg);
    return 0;
}
