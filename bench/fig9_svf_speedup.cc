/**
 * @file
 * Figure 9: performance improvement of the actual SVF implementation
 * over the baseline microarchitecture. Following the paper, the
 * single-ported-DL1 columns are speedups of (1+1S)/(1+2S) over the
 * (1+0) baseline, and the dual-ported columns are (2+1S)/(2+2S)
 * over the (2+0) baseline.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace svf;

int
main(int argc, char **argv)
{
    bench::Bench b(argc, argv,
                   "Figure 9: SVF Speedups over the Baseline "
                   "Microarchitecture (16-wide, 8KB SVF)",
                   "Figure 9");

    struct Column
    {
        const char *name;
        unsigned dl1_ports;
        unsigned svf_ports;
    };
    const Column columns[] = {
        {"(1+1S)", 1, 1},
        {"(1+2S)", 1, 2},
        {"(2+1S)", 2, 1},
        {"(2+2S)", 2, 2},
        {"(2+4S)", 2, 4},
    };

    // Per input: jobs 0/1 are the (1+0)/(2+0) baselines, 2..6 the
    // five SVF configurations.
    const auto inputs = bench::allInputs();
    harness::ExperimentPlan plan;
    for (const auto &bi : inputs) {
        harness::RunSetup s;
        s.workload = bi.workload;
        s.input = bi.input;
        s.maxInsts = b.budget();
        for (unsigned ports : {1u, 2u}) {
            s.machine = harness::baselineConfig(16, ports);
            plan.add(bi.display() + "/(" + std::to_string(ports) +
                     "+0)", s);
        }
        for (const Column &col : columns) {
            s.machine = harness::baselineConfig(16, col.dl1_ports);
            harness::applySvf(s.machine, 1024, col.svf_ports);
            plan.add(bi.display() + "/" + col.name, s);
        }
    }
    const auto res = b.run(plan);

    stats::Table t({"benchmark", "(1+1S)", "(1+2S)", "(2+1S)",
                    "(2+2S)", "(2+4S)"});
    std::vector<std::vector<double>> cols(5);

    for (size_t i = 0; i < inputs.size(); ++i) {
        const harness::JobOutcome *jobs = &res[i * 7];
        t.addRow();
        t.cell(inputs[i].display());
        for (size_t c = 0; c < 5; ++c) {
            const harness::RunResult &base =
                jobs[columns[c].dl1_ports - 1].run();
            double sp = harness::speedupPct(base, jobs[2 + c].run());
            cols[c].push_back(sp);
            t.cell(harness::pct(sp));
        }
    }

    bench::addMeanRow(t, cols);
    b.print(t);
    std::printf("\npaper: +50%% for (1+1S), +65%% for (1+2S); with "
                "a dual-ported DL1 the (2+2S) configuration averages "
                "+24%% with a maximum of +84%% (eon); performance "
                "saturates at two SVF ports except for eon.\n");
    return b.finish();
}
