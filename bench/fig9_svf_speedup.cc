/**
 * @file
 * Figure 9: performance improvement of the actual SVF implementation
 * over the baseline microarchitecture. Following the paper, the
 * single-ported-DL1 columns are speedups of (1+1S)/(1+2S) over the
 * (1+0) baseline, and the dual-ported columns are (2+1S)/(2+2S)
 * over the (2+0) baseline.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "stats/table.hh"

using namespace svf;

int
main(int argc, char **argv)
{
    Config cfg = Config::fromArgs(argc, argv);
    std::uint64_t budget = bench::instBudget(cfg);

    harness::banner("Figure 9: SVF Speedups over the Baseline "
                    "Microarchitecture (16-wide, 8KB SVF)",
                    "Figure 9");

    struct Column
    {
        const char *name;
        unsigned dl1_ports;
        unsigned svf_ports;
    };
    const Column columns[] = {
        {"(1+1S)", 1, 1},
        {"(1+2S)", 1, 2},
        {"(2+1S)", 2, 1},
        {"(2+2S)", 2, 2},
        {"(2+4S)", 2, 4},
    };

    stats::Table t({"benchmark", "(1+1S)", "(1+2S)", "(2+1S)",
                    "(2+2S)", "(2+4S)"});
    std::vector<std::vector<double>> cols(5);

    for (const auto &bi : bench::allInputs()) {
        harness::RunSetup s;
        s.workload = bi.workload;
        s.input = bi.input;
        s.maxInsts = budget;

        harness::RunResult base[3];
        for (unsigned ports : {1u, 2u}) {
            s.machine = harness::baselineConfig(16, ports);
            base[ports] = harness::runExperiment(s);
        }

        t.addRow();
        t.cell(bi.display());
        for (size_t c = 0; c < 5; ++c) {
            s.machine = harness::baselineConfig(
                16, columns[c].dl1_ports);
            harness::applySvf(s.machine, 1024,
                              columns[c].svf_ports);
            harness::RunResult r = harness::runExperiment(s);
            double sp = harness::speedupPct(
                base[columns[c].dl1_ports], r);
            cols[c].push_back(sp);
            t.cell(harness::pct(sp));
        }
    }

    t.addRow();
    t.cell(std::string("average"));
    for (size_t c = 0; c < 5; ++c)
        t.cell(harness::pct(harness::mean(cols[c])));

    t.print(std::cout);
    std::printf("\npaper: +50%% for (1+1S), +65%% for (1+2S); with "
                "a dual-ported DL1 the (2+2S) configuration averages "
                "+24%% with a maximum of +84%% (eon); performance "
                "saturates at two SVF ports except for eon.\n");
    bench::finishConfig(cfg);
    return 0;
}
