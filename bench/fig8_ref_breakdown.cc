/**
 * @file
 * Figure 8: breakdown of SVF reference types — the fraction of stack
 * references morphed into register moves in the front end (fast SVF
 * loads/stores) versus those rerouted into the SVF after address
 * calculation, plus the stack refs that fell outside the window.
 */

#include <cstdio>
#include <iostream>

#include "bench_util.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/runner.hh"
#include "stats/table.hh"

using namespace svf;

int
main(int argc, char **argv)
{
    bench::Bench b(argc, argv,
                   "Figure 8: Breakdown of SVF Reference Types "
                   "(8KB SVF, 2 ports, 16-wide)", "Figure 8");

    const auto inputs = bench::allInputs();
    harness::ExperimentPlan plan;
    for (const auto &bi : inputs) {
        harness::RunSetup s;
        s.workload = bi.workload;
        s.input = bi.input;
        s.maxInsts = b.budget();
        s.machine = harness::baselineConfig(16, 2);
        harness::applySvf(s.machine, 1024, 2);
        plan.add(bi.display(), s);
    }
    const auto res = b.run(plan);

    stats::Table t({"benchmark", "fast loads%", "fast stores%",
                    "rerouted%", "window miss%"});

    double sum_fast = 0.0;
    int n = 0;
    for (size_t i = 0; i < inputs.size(); ++i) {
        const harness::RunResult &r = res[i].run();

        std::uint64_t fast = r.svfFastLoads + r.svfFastStores;
        std::uint64_t rer = r.svfReroutedLoads + r.svfReroutedStores;
        std::uint64_t total = fast + rer + r.svfWindowMisses;
        auto pct_of = [&](std::uint64_t x) {
            return total ? 100.0 * double(x) / double(total) : 0.0;
        };

        t.addRow();
        t.cell(inputs[i].display());
        t.cell(pct_of(r.svfFastLoads), 1);
        t.cell(pct_of(r.svfFastStores), 1);
        t.cell(pct_of(rer), 1);
        t.cell(pct_of(r.svfWindowMisses), 1);

        sum_fast += pct_of(fast);
        ++n;
    }

    b.print(t);
    std::printf("\naverage: %.0f%% of stack references morph "
                "directly in the front end\n", sum_fast / n);
    std::printf("paper: around 86%% morph into register moves; 14%% "
                "are rerouted after address calculation (eon is the "
                "reroute-heavy outlier).\n");
    return b.finish();
}
