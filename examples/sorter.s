; sorter.s — insertion sort over a stack-allocated array.
;
; A hand-written SVA program demonstrating the stack idioms the SVF
; accelerates: a frame allocated with lda $sp, -N($sp), locals
; addressed $sp-relative, an address-taken array walked through
; general-purpose registers, and a helper call that spills/reloads
; its argument.
;
; Run it:
;     ./build/tools/svf-sim asm=examples/sorter.s svf=1
;     ./build/examples/run_asm file=examples/sorter.s

main:
    lda $sp, -144($sp)      ; frame: 16 quadword slots + $ra
    stq $ra, 136($sp)

    ; Fill slots 0..15 with a descending sequence scrambled by a
    ; small LCG: a[i] = (i * 37 + 11) & 63.
    li $t0, 0               ; i
fill:
    mulq $t0, 37, $t1
    addq $t1, 11, $t1
    and  $t1, 63, $t1
    sll  $t0, 3, $t2
    addq $sp, $t2, $t2      ; &a[i]  (address-taken local)
    stq  $t1, 0($t2)
    addq $t0, 1, $t0
    cmplt $t0, 16, $t3
    bne  $t3, fill

    ; Insertion sort: for i in 1..15, sink a[i] left.
    li $t0, 1               ; i
outer:
    sll  $t0, 3, $t2
    addq $sp, $t2, $t2
    ldq  $t4, 0($t2)        ; key = a[i]
    mov  $t0, $t5           ; j = i
inner:
    ble  $t5, place         ; j == 0 -> place
    sll  $t5, 3, $t2
    addq $sp, $t2, $t2
    ldq  $t6, -8($t2)       ; a[j-1]
    cmple $t6, $t4, $t7     ; a[j-1] <= key -> place
    bne  $t7, place
    stq  $t6, 0($t2)        ; a[j] = a[j-1]
    subq $t5, 1, $t5
    br   inner
place:
    sll  $t5, 3, $t2
    addq $sp, $t2, $t2
    stq  $t4, 0($t2)        ; a[j] = key
    addq $t0, 1, $t0
    cmplt $t0, 16, $t3
    bne  $t3, outer

    ; Print the sorted array through a helper that spills its
    ; argument (a classic morphable store/load pair).
    li $t0, 0
print:
    sll  $t0, 3, $t2
    addq $sp, $t2, $t2
    ldq  $a0, 0($t2)
    mov  $t0, $s0
    call emit
    mov  $s0, $t0
    addq $t0, 1, $t0
    cmplt $t0, 16, $t3
    bne  $t3, print

    ldq $ra, 136($sp)
    lda $sp, 144($sp)
    halt

emit:                       ; print $a0 as a decimal line
    lda $sp, -16($sp)
    stq $a0, 0($sp)         ; spill
    ldq $a0, 0($sp)         ; reload (renamed to a move by the SVF)
    putint
    lda $sp, 16($sp)
    ret
