/**
 * @file
 * Design-space exploration: sweep SVF capacity and port count for a
 * workload and print the speedup/traffic grid a designer would use
 * to size the structure (the paper settles on 8KB x 2 ports).
 *
 * Usage:
 *     ./build/examples/design_space [workload=crafty] [input=ref]
 *                                   [insts=200000]
 */

#include <cstdio>
#include <iostream>

#include "base/config.hh"
#include "harness/experiment.hh"
#include "harness/reporting.hh"
#include "harness/traffic.hh"
#include "stats/table.hh"
#include "workloads/registry.hh"

using namespace svf;

int
main(int argc, char **argv)
{
    Config cfg = Config::fromArgs(argc, argv);
    std::string name = cfg.getString("workload", "crafty");
    const workloads::WorkloadSpec &spec = workloads::workload(name);
    std::string input = cfg.getString("input", spec.inputs[0]);
    std::uint64_t insts = cfg.getUint("insts", 200'000);

    std::printf("SVF design space for %s.%s (16-wide, 2 DL1 "
                "ports)\n\n", name.c_str(), input.c_str());

    harness::RunSetup base_setup;
    base_setup.workload = name;
    base_setup.input = input;
    base_setup.maxInsts = insts;
    base_setup.machine = harness::baselineConfig(16, 2);
    harness::RunResult base = harness::runExperiment(base_setup);
    std::printf("baseline: %llu cycles (IPC %.2f)\n\n",
                (unsigned long long)base.core.cycles, base.ipc());

    stats::Table t({"capacity", "1 port", "2 ports", "4 ports",
                    "qw-in", "qw-out"});
    for (std::uint64_t kb : {1, 2, 4, 8, 16}) {
        t.addRow();
        t.cell(std::to_string(kb) + "KB");
        for (unsigned ports : {1u, 2u, 4u}) {
            harness::RunSetup s = base_setup;
            harness::applySvf(
                s.machine,
                static_cast<std::uint32_t>(kb * 1024 / 8), ports);
            harness::RunResult r = harness::runExperiment(s);
            t.cell(harness::pct(harness::speedupPct(base, r)));
        }
        harness::TrafficSetup ts;
        ts.workload = name;
        ts.input = input;
        ts.maxInsts = insts;
        ts.capacityBytes = kb * 1024;
        harness::TrafficResult tr = harness::measureTraffic(ts);
        t.cell(tr.svfQuadsIn);
        t.cell(tr.svfQuadsOut);
    }
    t.print(std::cout);

    std::printf("\nThe paper's pick: 8KB and 2 ports — beyond that, "
                "extra capacity rarely covers more references and "
                "extra ports rarely find parallelism (eon is the "
                "exception).\n");
    for (const auto &key : cfg.unusedKeys())
        std::fprintf(stderr, "warn: unused key '%s'\n", key.c_str());
    return 0;
}
