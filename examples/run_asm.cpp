/**
 * @file
 * Run a hand-written SVA assembly file through the whole stack:
 * assemble, disassemble back, execute functionally, then time it on
 * the paper's 16-wide machine with and without the SVF.
 *
 * Usage:
 *     ./build/examples/run_asm file=examples/sorter.s
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/config.hh"
#include "base/logging.hh"
#include "harness/experiment.hh"
#include "isa/assembler.hh"
#include "isa/decode.hh"
#include "isa/disasm.hh"
#include "sim/emulator.hh"
#include "uarch/ooo_core.hh"

using namespace svf;

int
main(int argc, char **argv)
{
    Config cfg = Config::fromArgs(argc, argv);
    std::string path = cfg.getString("file", "examples/sorter.s");

    std::ifstream in(path);
    if (!in)
        fatal("cannot open '%s' (run from the repository root, or "
              "pass file=<path>)", path.c_str());
    std::stringstream ss;
    ss << in.rdbuf();

    isa::Program prog;
    try {
        prog = isa::assemble(ss.str(), path);
    } catch (const isa::AsmError &e) {
        fatal("%s: %s", path.c_str(), e.what());
    }
    std::printf("assembled %s: %llu instructions\n", path.c_str(),
                (unsigned long long)(prog.textSize / 4));

    if (cfg.getBool("listing", false)) {
        for (Addr pc = prog.textBase;
             pc < prog.textBase + prog.textSize; pc += 4) {
            isa::DecodedInst di;
            if (isa::decode(prog.fetchRaw(pc), di)) {
                std::printf("  %06llx  %s\n", (unsigned long long)pc,
                            isa::disassemble(di, pc).c_str());
            }
        }
    }

    sim::Emulator emu(prog);
    emu.run(cfg.getUint("insts", 10'000'000));
    if (!emu.halted())
        fatal("program did not halt within the budget");
    std::printf("\nprogram output:\n%s", emu.output().c_str());
    std::printf("\n%llu instructions executed\n",
                (unsigned long long)emu.instCount());

    for (bool with_svf : {false, true}) {
        uarch::MachineConfig m = harness::baselineConfig(16, 2);
        if (with_svf)
            harness::applySvf(m, 1024, 2);
        sim::Emulator oracle(prog);
        uarch::OooCore core(m, oracle);
        core.run();
        std::printf("%-10s %6llu cycles, IPC %.2f\n",
                    with_svf ? "with SVF:" : "baseline:",
                    (unsigned long long)core.stats().cycles,
                    core.stats().ipc());
    }

    for (const auto &key : cfg.unusedKeys())
        std::fprintf(stderr, "warn: unused key '%s'\n", key.c_str());
    return 0;
}
