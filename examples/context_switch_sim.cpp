/**
 * @file
 * Multiprogramming: how context-switch frequency affects the
 * writeback traffic of a stack cache versus a stack value file
 * (Section 5.3.3 / Table 4 of the paper, swept over the period).
 *
 * Usage:
 *     ./build/examples/context_switch_sim [workload=eon]
 *                                         [input=cook]
 *                                         [insts=2000000]
 */

#include <cstdio>
#include <iostream>

#include "base/config.hh"
#include "harness/traffic.hh"
#include "stats/table.hh"
#include "workloads/registry.hh"

using namespace svf;

int
main(int argc, char **argv)
{
    Config cfg = Config::fromArgs(argc, argv);
    std::string name = cfg.getString("workload", "eon");
    const workloads::WorkloadSpec &spec = workloads::workload(name);
    std::string input = cfg.getString("input", spec.inputs[0]);
    std::uint64_t insts = cfg.getUint("insts", 2'000'000);

    std::printf("context-switch writeback traffic for %s.%s "
                "(8KB structures)\n\n", name.c_str(), input.c_str());

    stats::Table t({"switch period", "switches",
                    "stack$ B/switch", "svf B/switch", "ratio"});
    for (std::uint64_t period :
         {50'000ull, 100'000ull, 200'000ull, 400'000ull,
          800'000ull}) {
        harness::TrafficSetup s;
        s.workload = name;
        s.input = input;
        s.maxInsts = insts;
        s.capacityBytes = 8192;
        s.slicePeriod = period;
        harness::TrafficResult r = harness::measureTraffic(s);

        double n = r.ctxSwitches ? double(r.ctxSwitches) : 1.0;
        double sc = double(r.scCtxBytes) / n;
        double svf_b = double(r.svfCtxBytes) / n;
        t.addRow();
        t.cell(period);
        t.cell(r.ctxSwitches);
        t.cell(sc, 0);
        t.cell(svf_b, 0);
        t.cell(svf_b > 0 ? sc / svf_b : 0.0, 1);
    }
    t.print(std::cout);

    std::printf("\nThe SVF flushes only live dirty 64-bit words; the "
                "stack cache must write back whole dirty lines, dead "
                "frames included (paper: 3-20x more traffic).\n");
    for (const auto &key : cfg.unusedKeys())
        std::fprintf(stderr, "warn: unused key '%s'\n", key.c_str());
    return 0;
}
