/**
 * @file
 * Quickstart: assemble a small SVA program from text, run it on the
 * functional emulator, then compare the cycle model with and
 * without a Stack Value File.
 *
 * Build and run:
 *     cmake -B build -G Ninja && cmake --build build
 *     ./build/examples/quickstart
 */

#include <cstdio>

#include "harness/experiment.hh"
#include "isa/assembler.hh"
#include "sim/emulator.hh"
#include "uarch/ooo_core.hh"

using namespace svf;

namespace
{

// A recursive factorial with a classic frame: the kind of code the
// SVF accelerates. Every call spills its argument and $ra to the
// stack and reloads them after the recursive call returns.
const char *kProgram = R"(
main:
    lda $sp, -16($sp)
    stq $ra, 8($sp)
    li  $a0, 15
    call fact
    mov $v0, $a0
    putint              ; prints 15! = 1307674368000
    ldq $ra, 8($sp)
    lda $sp, 16($sp)
    halt

fact:                   ; v0 = a0!
    lda $sp, -32($sp)
    stq $ra, 24($sp)
    stq $a0, 0($sp)     ; spill n
    li  $v0, 1
    ble $a0, base       ; n <= 0 -> 1
    subq $a0, 1, $a0
    call fact           ; v0 = (n-1)!
    ldq $t0, 0($sp)     ; reload n
    mulq $v0, $t0, $v0  ; v0 = n * (n-1)!
base:
    ldq $ra, 24($sp)
    lda $sp, 32($sp)
    ret
)";

void
runTiming(const isa::Program &prog, bool with_svf)
{
    uarch::MachineConfig cfg = harness::baselineConfig(16, 2);
    if (with_svf)
        harness::applySvf(cfg, 1024, 2);

    sim::Emulator oracle(prog);
    uarch::OooCore core(cfg, oracle);
    core.run();

    const uarch::CoreStats &s = core.stats();
    std::printf("  %-12s %6llu cycles  %5.2f IPC",
                with_svf ? "with SVF:" : "baseline:",
                static_cast<unsigned long long>(s.cycles), s.ipc());
    if (with_svf) {
        std::printf("  (%llu refs morphed to register moves)",
                    static_cast<unsigned long long>(
                        core.svfUnit().fastLoads() +
                        core.svfUnit().fastStores()));
    }
    std::printf("\n");
}

} // anonymous namespace

int
main()
{
    // 1. Assemble.
    isa::Program prog = isa::assemble(kProgram, "quickstart");
    std::printf("assembled '%s': %llu bytes of text\n",
                prog.name.c_str(),
                static_cast<unsigned long long>(prog.textSize));

    // 2. Functional run: the architectural reference.
    sim::Emulator emu(prog);
    emu.run(1'000'000);
    std::printf("functional run: %llu instructions, output: %s",
                static_cast<unsigned long long>(emu.instCount()),
                emu.output().c_str());

    // 3. Timing runs: Table 2's 16-wide machine, with and without
    //    the paper's 8KB / 2-port stack value file.
    std::printf("cycle model (16-wide, Table 2):\n");
    runTiming(prog, false);
    runTiming(prog, true);

    std::printf("\nThe SVF turns each spill/reload pair in 'fact' "
                "into renamed register moves,\nshort-circuiting the "
                "3-cycle store-forward path and freeing DL1 ports."
                "\n");
    return 0;
}
