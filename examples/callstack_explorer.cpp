/**
 * @file
 * Callstack explorer: profile any registered workload's stack
 * behaviour the way Section 2 of the paper characterizes SPECint2000
 * — region mix, access methods, depth over time and offset locality.
 *
 * Usage:
 *     ./build/examples/callstack_explorer [workload=crafty]
 *                                         [input=ref] [insts=500000]
 */

#include <algorithm>
#include <cstdio>

#include "base/config.hh"
#include "workloads/calibration.hh"
#include "workloads/registry.hh"

using namespace svf;

int
main(int argc, char **argv)
{
    Config cfg = Config::fromArgs(argc, argv);
    std::string name = cfg.getString("workload", "crafty");
    const workloads::WorkloadSpec &spec = workloads::workload(name);
    std::string input = cfg.getString("input", spec.inputs[0]);
    std::uint64_t insts = cfg.getUint("insts", 500'000);

    std::printf("profiling %s.%s (stand-in for %s)...\n",
                name.c_str(), input.c_str(), spec.paperName.c_str());

    isa::Program prog = spec.build(input, spec.defaultScale);
    workloads::StackProfile p =
        workloads::profileProgram(prog, insts, 64);

    auto pct = [](std::uint64_t a, std::uint64_t b) {
        return b ? 100.0 * double(a) / double(b) : 0.0;
    };

    std::printf("\n== regions (Figure 1) ==\n");
    std::printf("instructions: %llu, memory refs: %llu (%.0f%%)\n",
                (unsigned long long)p.insts,
                (unsigned long long)p.memRefs,
                pct(p.memRefs, p.insts));
    std::printf("stack %.1f%%  global %.1f%%  heap %.1f%%\n",
                pct(p.stackRefs, p.memRefs),
                pct(p.globalRefs, p.memRefs),
                pct(p.heapRefs, p.memRefs));
    std::printf("stack methods: $sp %.1f%%  $fp %.1f%%  $gpr %.1f%%\n",
                pct(p.stackSp, p.stackRefs),
                pct(p.stackFp, p.stackRefs),
                pct(p.stackGpr, p.stackRefs));

    std::printf("\n== depth over time (Figure 2) ==\n");
    std::printf("max depth: %llu words (%llu bytes)%s\n",
                (unsigned long long)p.maxDepthWords,
                (unsigned long long)(p.maxDepthWords * 8),
                p.maxDepthWords <= 1000
                    ? " - fits the paper's 8KB SVF"
                    : " - EXCEEDS the paper's 8KB SVF");
    // A coarse ASCII sparkline of the depth series.
    if (!p.depthSamples.empty()) {
        std::uint64_t max_d = 1;
        for (const auto &[i, d] : p.depthSamples)
            max_d = std::max(max_d, d);
        static const char glyphs[] = " .:-=+*#%@";
        std::printf("depth: [");
        for (const auto &[i, d] : p.depthSamples) {
            unsigned level = static_cast<unsigned>(
                (d * 9) / max_d);
            std::printf("%c", glyphs[level]);
        }
        std::printf("] (0..%llu words)\n",
                    (unsigned long long)max_d);
    }

    std::printf("\n== offset locality (Figure 3) ==\n");
    std::printf("average offset from TOS: %.1f bytes\n",
                p.avgOffsetBytes);
    std::printf("within 256B of TOS: %.2f%%   within 8KB: %.2f%%\n",
                100.0 * p.within256, 100.0 * p.within8k);
    std::printf("references below TOS: %llu\n",
                (unsigned long long)p.belowTos);

    for (const auto &key : cfg.unusedKeys())
        std::fprintf(stderr, "warn: unused key '%s'\n", key.c_str());
    return 0;
}
